// Exhaustive schedule exploration (stateless model checking).
//
// For small process counts and short protocols, the simulator can do better
// than sampling adversaries: it can enumerate *every* schedule. explore()
// drives a fresh execution per schedule, choosing the next process by
// depth-first search over the tree of scheduling decisions (the coin flips
// are fixed by the run seed, so for a given seed the execution is a pure
// function of the schedule). An invariant callback inspects every completed
// execution; any violation is reported with the exact schedule that caused
// it — a replayable counterexample.
//
// This gives CHESS-style guarantees for the paper's safety properties at
// small scale: e.g. "for these coin outcomes, NO schedule of 2-3 processes
// produces two test-and-set winners" is checked over every interleaving,
// not just sampled ones.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/executor.h"

namespace renamelib::sim {

/// Replays a fixed schedule: decision i steps pids[i]; when the recorded
/// schedule is exhausted (or names a non-pending process), falls back to the
/// lowest pending pid. Exposes how many decisions were actually consumed.
class ReplayAdversary final : public Adversary {
 public:
  explicit ReplayAdversary(std::vector<int> schedule)
      : schedule_(std::move(schedule)) {}

  Decision pick(const std::vector<ProcView>& views) override;
  std::string name() const override { return "replay"; }

  /// True iff every decision so far came from the recorded schedule.
  bool on_script() const noexcept { return on_script_; }
  std::size_t consumed() const noexcept { return cursor_; }

 private:
  std::vector<int> schedule_;
  std::size_t cursor_ = 0;
  bool on_script_ = true;
};

/// Result of an exhaustive exploration.
struct ExploreResult {
  std::uint64_t executions = 0;       ///< complete executions enumerated
  std::uint64_t truncated = 0;        ///< prefixes cut off by max_depth
  bool invariant_violated = false;
  std::vector<int> counterexample;    ///< schedule of the first violation
};

/// Options for explore().
struct ExploreOptions {
  std::uint64_t seed = 1;       ///< fixes all coin flips
  std::size_t max_depth = 64;   ///< longest schedule prefix to branch on;
                                ///< beyond it the run continues round-robin
  std::uint64_t max_executions = 2'000'000;  ///< safety valve
};

/// Enumerates schedules depth-first. After each complete execution calls
/// `invariant(result)`; returning false stops the search and records the
/// schedule as a counterexample. The body must be re-runnable from scratch
/// (explore() constructs fresh shared state per run via `make_body`).
ExploreResult explore_schedules(
    int nproc, const std::function<std::function<void(Ctx&)>()>& make_body,
    const std::function<bool(const SimResult&)>& invariant,
    const ExploreOptions& options = {});

}  // namespace renamelib::sim
