// Deterministic adversarial executor for asynchronous shared memory.
//
// Executor runs k process bodies, each on its own OS thread, but serializes
// their shared-memory operations: a process blocks at its SchedGate before
// every shared step and proceeds only when the Adversary schedules it. The
// result is a faithful, deterministic implementation of the paper's
// asynchronous model with a strong adaptive adversary:
//
//   * any interleaving the model allows is some grant sequence,
//   * the adversary observes pending operations (incl. labels and coin
//     counters) before deciding,
//   * crashes are modeled by killing a process between its steps,
//   * given (process seeds, adversary), the execution is reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/ctx.h"
#include "sim/adversary.h"
#include "sim/trace.h"

namespace renamelib::sim {

/// Knobs for one simulated execution.
struct RunOptions {
  std::uint64_t seed = 1;  ///< base seed; process p uses derive(seed, p)
  /// Abort the run after this many granted steps. Randomized algorithms have
  /// probability-0 infinite executions; a generous bound keeps tests finite.
  std::uint64_t max_total_steps = 50'000'000;
  bool record_trace = false;
};

/// Per-process outcome of a simulated run.
struct ProcResult {
  bool finished = false;  ///< body returned normally
  bool crashed = false;   ///< killed by the adversary
  std::uint64_t shared_steps = 0;
  std::uint64_t steps = 0;  ///< paper cost model: shared + coin-flip batches
  std::uint64_t coin_flips = 0;
};

/// Outcome of a simulated run.
struct SimResult {
  std::vector<ProcResult> procs;
  std::uint64_t total_granted_steps = 0;
  bool hit_step_limit = false;
  Trace trace;  ///< empty unless RunOptions::record_trace

  std::uint64_t max_proc_steps() const;
  std::uint64_t total_proc_steps() const;
  std::size_t finished_count() const;
  std::size_t crashed_count() const;
};

/// Runs `body(ctx)` for pids 0..nproc-1 under `adversary`.
///
/// The body may use any renamelib shared objects; all of their operations are
/// scheduled by the adversary. Throws nothing; crashed processes simply stop.
SimResult run_simulation(int nproc, const std::function<void(Ctx&)>& body,
                         Adversary& adversary, const RunOptions& options = {});

}  // namespace renamelib::sim
