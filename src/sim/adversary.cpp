#include "sim/adversary.h"

#include <cstring>

#include "core/assert.h"

namespace renamelib::sim {

namespace {

/// pids of all pending processes, in pid order.
std::vector<int> pending_pids(const std::vector<ProcView>& views) {
  std::vector<int> out;
  out.reserve(views.size());
  for (const auto& v : views) {
    if (v.pending) out.push_back(v.pid);
  }
  return out;
}

}  // namespace

Decision RoundRobinAdversary::pick(const std::vector<ProcView>& views) {
  const int n = static_cast<int>(views.size());
  for (int off = 0; off < n; ++off) {
    const int pid = (cursor_ + off) % n;
    if (views[pid].pending) {
      cursor_ = (pid + 1) % n;
      return Decision::step(pid);
    }
  }
  RENAMELIB_ENSURE(false, "pick() called with no pending process");
}

Decision RandomAdversary::pick(const std::vector<ProcView>& views) {
  const auto pending = pending_pids(views);
  RENAMELIB_ENSURE(!pending.empty(), "pick() called with no pending process");
  return Decision::step(pending[rng_.below(pending.size())]);
}

Decision ObstructionAdversary::pick(const std::vector<ProcView>& views) {
  const int n = static_cast<int>(views.size());
  // Rotate favor until it points at a live process.
  for (int tries = 0; tries < n; ++tries) {
    const auto& fav = views[favored_];
    if (fav.pending) {
      if (used_ < budget_) {
        ++used_;
        return Decision::step(favored_);
      }
      // Budget exhausted: move favor on.
    } else if (!fav.done && !fav.crashed) {
      // Favored process is running local code; it will be pending soon, but
      // pick() requires a decision now — fall through to any pending process
      // only after rotating past it.
    }
    favored_ = (favored_ + 1) % n;
    used_ = 0;
  }
  const auto pending = pending_pids(views);
  RENAMELIB_ENSURE(!pending.empty(), "pick() called with no pending process");
  return Decision::step(pending.front());
}

Decision LabelStarvingAdversary::pick(const std::vector<ProcView>& views) {
  std::vector<int> preferred;
  std::vector<int> starved;
  for (const auto& v : views) {
    if (!v.pending) continue;
    const bool hit = v.info.label != nullptr &&
                     std::strstr(v.info.label, target_.c_str()) != nullptr;
    (hit ? starved : preferred).push_back(v.pid);
  }
  const auto& pool = preferred.empty() ? starved : preferred;
  RENAMELIB_ENSURE(!pool.empty(), "pick() called with no pending process");
  return Decision::step(pool[rng_.below(pool.size())]);
}

CrashAdversary::CrashAdversary(std::unique_ptr<Adversary> inner,
                               std::vector<std::int64_t> crash_at,
                               std::size_t max_crashes)
    : inner_(std::move(inner)),
      crash_at_(std::move(crash_at)),
      max_crashes_(max_crashes) {}

Decision CrashAdversary::pick(const std::vector<ProcView>& views) {
  if (crashes_done_ < max_crashes_) {
    for (const auto& v : views) {
      if (v.crashed || v.done) continue;
      if (v.pid < static_cast<int>(crash_at_.size()) && crash_at_[v.pid] >= 0 &&
          v.shared_steps >= static_cast<std::uint64_t>(crash_at_[v.pid])) {
        ++crashes_done_;
        return Decision::crash(v.pid);
      }
    }
  }
  return inner_->pick(views);
}

}  // namespace renamelib::sim
