// Adversary strategies driving the simulated scheduler.
//
// The paper's model is a *strong adaptive* adversary: it controls scheduling
// and crashes and may observe everything, including coin-flip outcomes,
// before each decision. Here the adversary sees, for every process, whether
// it is pending a shared step, the step's metadata (operation kind, target
// register identity, protocol-phase label) and its counters, and returns a
// decision: schedule one pending process, or crash one.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/rng.h"
#include "core/step.h"

namespace renamelib::sim {

/// Snapshot of one simulated process, exposed to the adversary.
struct ProcView {
  int pid = 0;
  bool pending = false;  ///< blocked at the gate with `info` valid
  bool done = false;
  bool crashed = false;
  StepInfo info{};
  std::uint64_t shared_steps = 0;
  std::uint64_t coin_flips = 0;
};

/// One scheduling decision.
struct Decision {
  enum class Kind { kStep, kCrash };
  Kind kind = Kind::kStep;
  int pid = -1;

  static Decision step(int pid) { return {Kind::kStep, pid}; }
  static Decision crash(int pid) { return {Kind::kCrash, pid}; }
};

/// Strategy interface. `pick` is called whenever at least one process is
/// pending; it must return a step decision for a pending process or a crash
/// decision for a live (pending or running) process within the crash budget.
class Adversary {
 public:
  virtual ~Adversary() = default;

  /// Chooses the next decision. `views` has one entry per process, indexed by
  /// pid. At least one entry has pending == true.
  virtual Decision pick(const std::vector<ProcView>& views) = 0;

  /// Human-readable strategy name (for traces and test diagnostics).
  virtual std::string name() const = 0;
};

/// Schedules pending processes in cyclic pid order — the "fair" schedule.
class RoundRobinAdversary final : public Adversary {
 public:
  Decision pick(const std::vector<ProcView>& views) override;
  std::string name() const override { return "round-robin"; }

 private:
  int cursor_ = 0;
};

/// Schedules a uniformly random pending process. Deterministic in the seed.
class RandomAdversary final : public Adversary {
 public:
  explicit RandomAdversary(std::uint64_t seed) : rng_(seed) {}
  Decision pick(const std::vector<ProcView>& views) override;
  std::string name() const override { return "random"; }

 private:
  Rng rng_;
};

/// Runs one favored process solo for `budget` of its steps, then rotates the
/// favor to the next live process. Approximates obstruction/solo executions
/// and produces highly skewed schedules.
class ObstructionAdversary final : public Adversary {
 public:
  explicit ObstructionAdversary(std::uint64_t budget) : budget_(budget) {}
  Decision pick(const std::vector<ProcView>& views) override;
  std::string name() const override { return "obstruction"; }

 private:
  std::uint64_t budget_;
  std::uint64_t used_ = 0;
  int favored_ = 0;
};

/// Adaptive strategy: any process whose pending step carries a label
/// containing `target_label` is starved (scheduled only when no other pending
/// process exists). This exploits the strong-adaptive power: e.g. stall
/// processes that are about to win a test-and-set.
class LabelStarvingAdversary final : public Adversary {
 public:
  LabelStarvingAdversary(std::string target_label, std::uint64_t seed)
      : target_(std::move(target_label)), rng_(seed) {}
  Decision pick(const std::vector<ProcView>& views) override;
  std::string name() const override { return "label-starving(" + target_ + ")"; }

 private:
  std::string target_;
  Rng rng_;
};

/// Wraps another adversary and injects crashes: process p is crashed as soon
/// as its shared-step count reaches `crash_at[p]` (entries < 0 mean never).
/// At most `max_crashes` crashes are performed (the paper's t < n).
class CrashAdversary final : public Adversary {
 public:
  CrashAdversary(std::unique_ptr<Adversary> inner, std::vector<std::int64_t> crash_at,
                 std::size_t max_crashes);
  Decision pick(const std::vector<ProcView>& views) override;
  std::string name() const override { return "crash+" + inner_->name(); }

 private:
  std::unique_ptr<Adversary> inner_;
  std::vector<std::int64_t> crash_at_;
  std::size_t max_crashes_;
  std::size_t crashes_done_ = 0;
};

}  // namespace renamelib::sim
