#include "sim/explore.h"

#include <cstdio>
#include <optional>

#include "core/assert.h"

namespace renamelib::sim {

Decision ReplayAdversary::pick(const std::vector<ProcView>& views) {
  if (cursor_ < schedule_.size()) {
    const int pid = schedule_[cursor_];
    if (pid >= 0 && pid < static_cast<int>(views.size()) && views[pid].pending) {
      ++cursor_;
      return Decision::step(pid);
    }
    on_script_ = false;
  }
  for (const auto& v : views) {
    if (v.pending) return Decision::step(v.pid);
  }
  RENAMELIB_ENSURE(false, "pick() called with no pending process");
}

namespace {

/// Follows a prefix, records the pending set at the first decision past it,
/// then completes the run deterministically (lowest pending pid).
class ProbeAdversary final : public Adversary {
 public:
  explicit ProbeAdversary(const std::vector<int>& prefix) : prefix_(prefix) {}

  Decision pick(const std::vector<ProcView>& views) override {
    if (cursor_ < prefix_.size()) {
      const int pid = prefix_[cursor_++];
      if (!(pid >= 0 && pid < static_cast<int>(views.size()) &&
            views[pid].pending)) {
        std::fprintf(stderr,
                     "explore(): prefix [index %zu of %zu, pid %d] invalid; "
                     "pending now:",
                     cursor_ - 1, prefix_.size(), pid);
        for (const auto& v : views) {
          if (v.pending) std::fprintf(stderr, " %d", v.pid);
        }
        std::fprintf(stderr, "; prefix:");
        for (const int p : prefix_) std::fprintf(stderr, " %d", p);
        std::fprintf(stderr, "\n");
        RENAMELIB_ENSURE(false,
                         "explore(): prefix no longer valid — nondeterminism?");
      }
      return Decision::step(pid);
    }
    if (cursor_ == prefix_.size() && !branch_recorded_) {
      branch_recorded_ = true;
      for (const auto& v : views) {
        if (v.pending) branch_.push_back(v.pid);
      }
    }
    for (const auto& v : views) {
      if (v.pending) return Decision::step(v.pid);
    }
    RENAMELIB_ENSURE(false, "pick() called with no pending process");
  }

  std::string name() const override { return "probe"; }

  /// Pending pids at the first unconstrained decision; empty if the
  /// execution finished within the prefix.
  const std::vector<int>& branch() const noexcept { return branch_; }

 private:
  const std::vector<int>& prefix_;
  std::size_t cursor_ = 0;
  bool branch_recorded_ = false;
  std::vector<int> branch_;
};

struct SearchState {
  const std::function<std::function<void(Ctx&)>()>* make_body;
  const std::function<bool(const SimResult&)>* invariant;
  const ExploreOptions* options;
  int nproc = 0;
  ExploreResult result;
};

// Depth-first over schedule prefixes; each node performs one execution.
// Returns false to abort the search (violation or budget exhausted).
bool dfs(SearchState& state, std::vector<int>& prefix) {
  if (state.result.executions >= state.options->max_executions) return false;

  ProbeAdversary probe(prefix);
  RunOptions run_options;
  run_options.seed = state.options->seed;
  auto body = (*state.make_body)();
  const SimResult run = run_simulation(state.nproc, body, probe, run_options);
  ++state.result.executions;
  if (!(*state.invariant)(run)) {
    state.result.invariant_violated = true;
    state.result.counterexample = prefix;
    return false;
  }

  const auto& branch = probe.branch();
  if (branch.empty()) return true;  // execution ended within the prefix
  if (prefix.size() >= state.options->max_depth) {
    ++state.result.truncated;
    return true;  // checked with the deterministic completion only
  }
  for (int pid : branch) {
    prefix.push_back(pid);
    const bool keep_going = dfs(state, prefix);
    prefix.pop_back();
    if (!keep_going) return false;
  }
  return true;
}

}  // namespace

ExploreResult explore_schedules(
    int nproc, const std::function<std::function<void(Ctx&)>()>& make_body,
    const std::function<bool(const SimResult&)>& invariant,
    const ExploreOptions& options) {
  SearchState state;
  state.make_body = &make_body;
  state.invariant = &invariant;
  state.options = &options;
  state.nproc = nproc;
  std::vector<int> prefix;
  (void)dfs(state, prefix);
  return state.result;
}

}  // namespace renamelib::sim
