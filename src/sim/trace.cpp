#include "sim/trace.h"

#include <ostream>
#include <sstream>

namespace renamelib::sim {

void Trace::record_step(int pid, const StepInfo& info) {
  TraceEvent ev;
  ev.kind = TraceEvent::Kind::kStep;
  ev.pid = pid;
  ev.info = info;
  ev.global_seq = events_.size();
  events_.push_back(ev);
}

void Trace::record_crash(int pid) {
  TraceEvent ev;
  ev.kind = TraceEvent::Kind::kCrash;
  ev.pid = pid;
  ev.global_seq = events_.size();
  events_.push_back(ev);
}

void Trace::clear() { events_.clear(); }

std::uint64_t Trace::steps_of(int pid) const {
  std::uint64_t n = 0;
  for (const auto& ev : events_) {
    if (ev.kind == TraceEvent::Kind::kStep && ev.pid == pid) ++n;
  }
  return n;
}

std::string Trace::to_string(std::size_t max_events) const {
  std::ostringstream os;
  std::size_t shown = 0;
  for (const auto& ev : events_) {
    if (shown++ >= max_events) {
      os << "... (" << (events_.size() - max_events) << " more)\n";
      break;
    }
    os << ev.global_seq << ": p" << ev.pid;
    if (ev.kind == TraceEvent::Kind::kCrash) {
      os << " CRASH\n";
    } else {
      os << ' ' << renamelib::to_string(ev.info.kind) << " @" << ev.info.object;
      if (ev.info.label != nullptr && ev.info.label[0] != '\0') {
        os << " [" << ev.info.label << ']';
      }
      os << '\n';
    }
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Trace& trace) {
  return os << trace.to_string();
}

}  // namespace renamelib::sim
