#include "sim/executor.h"

#include <memory>
#include <thread>

#include "core/assert.h"
#include "core/sched_gate.h"
#include "obs/emit.h"

namespace renamelib::sim {

std::uint64_t SimResult::max_proc_steps() const {
  std::uint64_t m = 0;
  for (const auto& p : procs) m = std::max(m, p.steps);
  return m;
}

std::uint64_t SimResult::total_proc_steps() const {
  std::uint64_t t = 0;
  for (const auto& p : procs) t += p.steps;
  return t;
}

std::size_t SimResult::finished_count() const {
  std::size_t n = 0;
  for (const auto& p : procs) n += p.finished ? 1 : 0;
  return n;
}

std::size_t SimResult::crashed_count() const {
  std::size_t n = 0;
  for (const auto& p : procs) n += p.crashed ? 1 : 0;
  return n;
}

SimResult run_simulation(int nproc, const std::function<void(Ctx&)>& body,
                         Adversary& adversary, const RunOptions& options) {
  RENAMELIB_ENSURE(nproc > 0, "need at least one process");

  std::vector<std::unique_ptr<SchedGate>> gates;
  std::vector<std::unique_ptr<Ctx>> ctxs;
  gates.reserve(nproc);
  ctxs.reserve(nproc);
  for (int p = 0; p < nproc; ++p) {
    gates.push_back(std::make_unique<SchedGate>());
    ctxs.push_back(std::make_unique<Ctx>(p, Rng::derive(options.seed, p),
                                         gates.back().get()));
  }

  SimResult result;
  result.procs.resize(nproc);

  std::vector<std::thread> threads;
  threads.reserve(nproc);
  for (int p = 0; p < nproc; ++p) {
    threads.emplace_back([&, p] {
      // Tag this thread's obs::emit events with the simulated pid so the
      // flight recorder's post-mortem timeline names processes, not threads.
      obs::ThreadPidScope pid_scope(p);
      bool crashed = false;
      try {
        body(*ctxs[p]);
      } catch (const ProcessCrashed&) {
        crashed = true;
      }
      gates[p]->finish(crashed);
    });
    // Serialize the ungated prologue: wait for this process to reach its
    // first gate (or finish) before spawning the next. Bodies may cross
    // meta-level raw atomics before their first gated step (initial-id
    // dispensers, pool hints — zero-step by design), and once the scheduler
    // loop runs, local code only ever executes between two gates of the one
    // granted process. The startup window is the sole place where two
    // processes' local code overlaps, so without this barrier those races
    // are decided by OS thread-spawn timing instead of the adversary's
    // grant order — executions with identical schedules could diverge.
    gates[p]->wait_ready();
  }

  // Scheduler loop (runs on the calling thread). One decision per iteration.
  std::vector<ProcView> views(nproc);
  int prev_granted = -1;  // coverage: who ran before this decision
  for (;;) {
    // Wait for every live process to reach a stable point: pending at its
    // gate, done, or crashed. Processes running local code will arrive.
    bool any_pending = false;
    for (int p = 0; p < nproc; ++p) {
      const SchedGate::State st = gates[p]->wait_ready();
      auto& view = views[p];
      view.pid = p;
      view.pending = (st == SchedGate::State::kAtGate);
      view.done = (st == SchedGate::State::kDone);
      view.crashed = (st == SchedGate::State::kCrashed);
      view.shared_steps = ctxs[p]->shared_steps();
      view.coin_flips = ctxs[p]->coin_flips();
      view.info = view.pending ? gates[p]->info() : StepInfo{};
      any_pending |= view.pending;
    }
    if (!any_pending) break;  // all processes done or crashed

    if (result.total_granted_steps >= options.max_total_steps) {
      result.hit_step_limit = true;
      for (int p = 0; p < nproc; ++p) {
        if (views[p].pending) gates[p]->kill();
      }
      continue;  // loop again until everyone is done/crashed
    }

    const Decision d = adversary.pick(views);
    RENAMELIB_ENSURE(d.pid >= 0 && d.pid < nproc, "adversary picked bad pid");
    if (d.kind == Decision::Kind::kCrash) {
      RENAMELIB_ENSURE(!views[d.pid].done && !views[d.pid].crashed,
                       "adversary crashed a dead process");
      if (options.record_trace) result.trace.record_crash(d.pid);
      obs::emit_for(obs::Site::kSchedCrash, static_cast<std::uint64_t>(d.pid),
                    d.pid);
      gates[d.pid]->kill();
      continue;
    }

    RENAMELIB_ENSURE(views[d.pid].pending, "adversary scheduled a non-pending process");
    if (options.record_trace) result.trace.record_step(d.pid, views[d.pid].info);
    if (obs::Gate::mask() != 0) {
      // Scheduler decision-point event: the context-switch edge
      // (prev pid -> pid), the shared-step kind, and the protocol phase.
      // Pids, kinds, and label *contents* only — never pointers, so the
      // coverage feature reproduces across process runs (see fuzz/coverage.h).
      const StepInfo& info = views[d.pid].info;
      const std::uint64_t edge =
          (static_cast<std::uint64_t>(prev_granted + 1) << 32) |
          (static_cast<std::uint64_t>(d.pid) << 8) |
          static_cast<std::uint64_t>(info.kind);
      obs::emit_for(
          obs::Site::kSchedPoint,
          fuzz::Coverage::mix(edge) ^ fuzz::Coverage::hash_str(info.label),
          d.pid);
    }
    prev_granted = d.pid;
    ++result.total_granted_steps;
    gates[d.pid]->grant_and_wait();
  }

  for (auto& t : threads) t.join();

  for (int p = 0; p < nproc; ++p) {
    auto& pr = result.procs[p];
    pr.crashed = (gates[p]->state() == SchedGate::State::kCrashed);
    pr.finished = (gates[p]->state() == SchedGate::State::kDone);
    pr.shared_steps = ctxs[p]->shared_steps();
    pr.steps = ctxs[p]->steps();
    pr.coin_flips = ctxs[p]->coin_flips();
  }
  return result;
}

}  // namespace renamelib::sim
