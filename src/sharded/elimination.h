// Elimination-backoff collision layer shared by the sharded counters.
//
// An EliminationArray lets two concurrent operations meet away from the hot
// path: each op hashes to a random slot, one parks there briefly (the
// *waiter*), and a second op that lands on the same slot claims it (the
// *leader*). A successful collision serves two operations with one pairing:
//   * the diffracting tree uses pairing alone — a diffracted pair leaves a
//     balancer on opposite outputs without touching the toggle bit,
//   * the striped counter uses the payload flavor — the leader takes an extra
//     ticket and hands the resulting value to its waiter.
//
// Every wait is bounded. A parked waiter spends `spins` loads waiting to be
// claimed and backs out with a CAS; a *claimed* payload waiter spends
// `handoff_spins` loads waiting for the leader's delivery and then walks away
// with a CAS to the RECLAIMED tag. The delivery handshake is a race with one
// decisive CAS on the slot word:
//   * leader publishes the answer register first, then CASes
//     CLAIMED -> DELIVERED; if that CAS fails the waiter already reclaimed,
//     and the leader takes the value back as its own (the deliver() return
//     value says which) and reopens the slot,
//   * waiter CASes CLAIMED -> RECLAIMED on timeout; if that CAS fails the
//     value is already DELIVERED and the waiter consumes it.
// Tokens are minted fresh per parked operation (Ctx::mint_token), so a slot
// word can never ABA across park/claim/deliver generations.
//
// This makes the layer crash-tolerant: a leader killed between claiming and
// delivering no longer strands its waiter — the waiter times out, reclaims,
// and falls through to the object's normal path. The leader's orphaned
// ticket (at most one per crashed process) leaves a hole in the handed-out
// range, which is exactly the slack crash schedules already grant every
// object. A slot whose leader died post-claim stays RECLAIMED (dead) — later
// collisions see a non-parkable word and fall through, so width degrades but
// progress never blocks.
//
// Every slot access goes through core/Register, so collisions cost paper-model
// steps like any other shared-memory traffic and the simulator's adversary
// can schedule around (or into) them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "core/ctx.h"
#include "core/register.h"

namespace renamelib::sharded {

class EliminationArray {
 public:
  /// How a try_collide() attempt ended.
  enum class Role {
    kNone,    ///< no partner found; caller takes the object's normal path
    kWaiter,  ///< parked and was claimed; in payload mode `value` is the result
    kLeader,  ///< claimed a waiter; in payload mode caller MUST deliver()
  };

  /// Outcome of one collision attempt.
  struct Collision {
    Role role = Role::kNone;
    std::size_t slot = 0;     ///< slot index (leaders pass it to deliver())
    std::uint64_t token = 0;  ///< the pairing's ABA token (leaders: waiter's)
    std::uint64_t value = 0;  ///< payload mode, kWaiter: the delivered value
  };

  struct Options {
    std::size_t width = 4;   ///< number of collision slots
    int spins = 4;           ///< bounded loads a waiter spends parked
    int handoff_spins = 64;  ///< bounded loads a claimed waiter awaits delivery
    bool payload = false;    ///< leaders deliver a uint64 to their waiter
  };

  explicit EliminationArray(Options options);

  /// One bounded collision attempt on a random slot. In payload mode a
  /// claimed waiter awaits its leader's deliver() for at most
  /// `handoff_spins` loads, reclaiming and reporting kNone on timeout
  /// (values of ~0 are reserved as the "not yet" sentinel).
  Collision try_collide(Ctx& ctx);

  /// Payload mode, leader side: offers `value` to the waiter of `collision`.
  /// Returns true if the waiter took it; false if the waiter had already
  /// reclaimed, in which case the caller still owns `value` and must use it
  /// as its own result. Must be called exactly once after try_collide()
  /// returned kLeader.
  bool deliver(Ctx& ctx, const Collision& collision, std::uint64_t value);

  std::size_t width() const noexcept { return options_.width; }

 private:
  /// A claimed waiter finishes the handshake: in payload mode await the
  /// leader's value (bounded), then return the slot to EMPTY for the next
  /// pair — or reclaim and report kNone on timeout.
  Collision finish_as_waiter(Ctx& ctx, std::size_t slot, std::uint64_t token);

  Options options_;
  std::unique_ptr<RegisterArray<std::uint64_t>> state_;
  std::unique_ptr<RegisterArray<std::uint64_t>> answer_;  ///< payload mode only
};

}  // namespace renamelib::sharded
