// Elimination-backoff collision layer shared by the sharded counters.
//
// An EliminationArray lets two concurrent operations meet away from the hot
// path: each op hashes to a random slot, one parks there briefly (the
// *waiter*), and a second op that lands on the same slot claims it (the
// *leader*). A successful collision serves two operations with one pairing:
//   * the diffracting tree uses pairing alone — a diffracted pair leaves a
//     balancer on opposite outputs without touching the toggle bit,
//   * the striped counter uses the payload flavor — the leader performs both
//     slot fetch&adds and hands the second value to its waiter.
// All waits on the fast path are bounded (`spins`); a timed-out waiter backs
// out with a CAS and falls through to the object's normal path, so the layer
// never blocks progress. The one unbounded wait is a *paired* waiter in
// payload mode awaiting its leader's delivery — the same short handoff window
// every elimination stack has (lock-free overall: the leader is already
// committed to delivering). That window is also the layer's one crash
// vulnerability: a leader killed between claiming and delivering strands its
// waiter forever, so payload-mode objects (striped elim=1) are excluded from
// the crash-injection conformance schedules. Pairing mode has no such window
// — a claimed pairing waiter needs nothing further from its leader.
//
// Every slot access goes through core/Register, so collisions cost paper-model
// steps like any other shared-memory traffic and the simulator's adversary
// can schedule around (or into) them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "core/ctx.h"
#include "core/register.h"

namespace renamelib::sharded {

class EliminationArray {
 public:
  /// How a try_collide() attempt ended.
  enum class Role {
    kNone,    ///< no partner found; caller takes the object's normal path
    kWaiter,  ///< parked and was claimed; in payload mode `value` is the result
    kLeader,  ///< claimed a waiter; in payload mode caller MUST deliver()
  };

  /// Outcome of one collision attempt.
  struct Collision {
    Role role = Role::kNone;
    std::size_t slot = 0;     ///< slot index (leaders pass it to deliver())
    std::uint64_t value = 0;  ///< payload mode, kWaiter: the delivered value
  };

  struct Options {
    std::size_t width = 4;  ///< number of collision slots
    int spins = 4;          ///< bounded loads a waiter spends parked
    bool payload = false;   ///< leaders deliver a uint64 to their waiter
  };

  explicit EliminationArray(Options options);

  /// One bounded collision attempt on a random slot. In payload mode a
  /// claimed waiter additionally awaits its leader's deliver() before
  /// returning (values of ~0 are reserved as the "not yet" sentinel).
  Collision try_collide(Ctx& ctx);

  /// Payload mode, leader side: hands `value` to the waiter parked at `slot`.
  /// Must be called exactly once after try_collide() returned kLeader.
  void deliver(Ctx& ctx, std::size_t slot, std::uint64_t value);

  std::size_t width() const noexcept { return options_.width; }

 private:
  /// A claimed waiter finishes the handshake: in payload mode await the
  /// leader's value, then return the slot to EMPTY for the next pair.
  Collision finish_as_waiter(Ctx& ctx, std::size_t slot);

  Options options_;
  std::unique_ptr<RegisterArray<std::uint64_t>> state_;
  std::unique_ptr<RegisterArray<std::uint64_t>> answer_;  ///< payload mode only
};

}  // namespace renamelib::sharded
