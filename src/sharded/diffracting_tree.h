// Diffracting-tree counter (Shavit & Zemach flavor).
//
// A binary tree of balancers routes each operation from the root to one of
// L = 2^depth leaf sub-counters. Each balancer forwards alternate operations
// to alternate children (a toggle bit: fetch&add parity), so at quiescence
// the leaf visit counts have the counting-network step property: leaf with
// index i (root decides the LOW bit of i) is visited exactly
// ceil((T - i) / L) times out of T operations. The leaf hands its visitor a
// local rank v, and the overall value v*L + i; the step property makes the
// handed values exactly {0..T-1} once quiescent — the classic "counting tree"
// argument, here with composable leaves.
//
// The *diffracting* part removes the root bottleneck: in front of each toggle
// sits a prism (an EliminationArray in pairing mode). Two operations that
// collide in the prism leave on opposite outputs without touching the toggle
// at all — a pair contributes one op to each side, so the balancer's step
// property is untouched while the toggle sees only the un-paired residue.
//
// Leaves are arbitrary ICounter instances (any registry spec whose values are
// a dense prefix at quiescence — all registered families qualify), so the
// tree composes: bounded_fai leaves give the paper's polylog object a
// contention funnel; striped leaves give a two-level sharded counter; difftree
// leaves deepen the tree. Real-time order is not preserved across leaves, so
// the composite is quiescently consistent regardless of leaf consistency.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "api/counter.h"
#include "core/ctx.h"
#include "core/register.h"
#include "sharded/elimination.h"

namespace renamelib::sharded {

class DiffractingTreeCounter {
 public:
  struct Options {
    int depth = 3;                ///< balancer levels; 2^depth leaves
    bool prism = true;            ///< enable diffraction at each balancer
    std::size_t prism_width = 4;  ///< collision slots per balancer
    int prism_spins = 4;          ///< bounded waiter spins per collision
  };

  /// Builds one leaf sub-counter; called 2^depth times at construction.
  using LeafFactory = std::function<std::unique_ptr<api::ICounter>()>;

  DiffractingTreeCounter(Options options, const LeafFactory& make_leaf);

  /// Traverses root-to-leaf (diffracting or toggling at each balancer) and
  /// returns leaf_rank * leaves() + leaf_index. Sequential calls return
  /// exactly 0, 1, 2, ...
  std::uint64_t next(Ctx& ctx);

  /// Smallest leaf capacity times leaves(), or ICounter::kUnbounded if every
  /// leaf is unbounded. Values are < capacity(); the exact saturating
  /// sequential spec is the leaves' affair.
  std::uint64_t capacity() const;

  std::size_t leaves() const noexcept { return leaves_.size(); }

 private:
  struct Balancer {
    Register<std::uint64_t> toggle{0};
    std::unique_ptr<EliminationArray> prism;  ///< null when diffraction is off
  };

  Options options_;
  std::vector<std::unique_ptr<Balancer>> balancers_;  ///< heap-indexed 1..L-1
  std::vector<std::unique_ptr<api::ICounter>> leaves_;
};

}  // namespace renamelib::sharded
