#include "sharded/striped_counter.h"

#include "core/assert.h"

namespace renamelib::sharded {

StripedCounter::StripedCounter(Options options) : options_(options) {
  RENAMELIB_ENSURE(options_.stripes >= 1, "stripes must be >= 1");
  slots_ = std::make_unique<Slot[]>(options_.stripes);
  if (options_.elimination) {
    elim_ = std::make_unique<EliminationArray>(EliminationArray::Options{
        options_.elim_width, options_.elim_spins, /*payload=*/true});
  }
}

void StripedCounter::increment(Ctx& ctx) {
  const std::size_t stripe =
      static_cast<std::size_t>(ctx.pid()) % options_.stripes;
  slots_[stripe].count.fetch_add(ctx, 1);
}

std::uint64_t StripedCounter::read(Ctx& ctx) {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < options_.stripes; ++i) {
    sum += slots_[i].count.load(ctx);
  }
  return sum;
}

std::uint64_t StripedCounter::take(Ctx& ctx, std::uint64_t ticket) {
  const std::uint64_t stripe = ticket % options_.stripes;
  const std::uint64_t rank = slots_[stripe].count.fetch_add(ctx, 1);
  return rank * options_.stripes + stripe;
}

std::uint64_t StripedCounter::next(Ctx& ctx) {
  if (elim_ != nullptr) {
    const auto collision = elim_->try_collide(ctx);
    if (collision.role == EliminationArray::Role::kWaiter) {
      return collision.value;
    }
    if (collision.role == EliminationArray::Role::kLeader) {
      // Serve both ops: two consecutive tickets, deliver the partner's value
      // first so the waiter unparks while we finish our own.
      const std::uint64_t t = spray_.fetch_add(ctx, 2);
      elim_->deliver(ctx, collision.slot, take(ctx, t + 1));
      return take(ctx, t);
    }
  }
  return take(ctx, spray_.fetch_add(ctx, 1));
}

}  // namespace renamelib::sharded
