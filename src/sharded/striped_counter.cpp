#include "sharded/striped_counter.h"

#include "core/assert.h"

namespace renamelib::sharded {

StripedCounter::StripedCounter(Options options) : options_(options) {
  RENAMELIB_ENSURE(options_.stripes >= 1, "stripes must be >= 1");
  slots_ = std::make_unique<Slot[]>(options_.stripes);
  if (options_.elimination) {
    elim_ = std::make_unique<EliminationArray>(EliminationArray::Options{
        options_.elim_width, options_.elim_spins, options_.elim_handoff_spins,
        /*payload=*/true});
  }
}

void StripedCounter::increment(Ctx& ctx) {
  const std::size_t stripe =
      static_cast<std::size_t>(ctx.pid()) % options_.stripes;
  slots_[stripe].count.fetch_add(ctx, 1);
}

std::uint64_t StripedCounter::read(Ctx& ctx) {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < options_.stripes; ++i) {
    sum += slots_[i].count.load(ctx);
  }
  return sum;
}

std::uint64_t StripedCounter::take(Ctx& ctx, std::uint64_t ticket) {
  const std::uint64_t stripe = ticket % options_.stripes;
  const std::uint64_t rank = slots_[stripe].count.fetch_add(ctx, 1);
  return rank * options_.stripes + stripe;
}

void StripedCounter::next_batch(Ctx& ctx, std::uint64_t k,
                                std::vector<Run>& out) {
  if (k == 0) return;
  const std::uint64_t S = options_.stripes;
  const std::uint64_t t0 = spray_.fetch_add(ctx, k);
  // Tickets t0..t0+k-1 round-robin over the stripes exactly as k single
  // takes would; one fetch&add per touched stripe consumes its share.
  for (std::uint64_t j = 0; j < S && j < k; ++j) {
    const std::uint64_t ticket = t0 + j;
    const std::uint64_t stripe = ticket % S;
    const std::uint64_t share = (k - 1 - j) / S + 1;
    const std::uint64_t rank = slots_[stripe].count.fetch_add(ctx, share);
    out.push_back(Run{rank * S + stripe, S, share});
  }
}

std::uint64_t StripedCounter::next(Ctx& ctx) {
  if (elim_ != nullptr) {
    const auto collision = elim_->try_collide(ctx);
    if (collision.role == EliminationArray::Role::kWaiter) {
      return collision.value;
    }
    if (collision.role == EliminationArray::Role::kLeader) {
      // Serve the partner first, one ticket at a time: if the waiter timed
      // out and reclaimed, the offered value simply becomes our own — every
      // taken ticket is consumed either way, so the dense prefix survives.
      const std::uint64_t offered = take(ctx, spray_.fetch_add(ctx, 1));
      if (!elim_->deliver(ctx, collision, offered)) return offered;
    }
  }
  return take(ctx, spray_.fetch_add(ctx, 1));
}

}  // namespace renamelib::sharded
