// Cache-line-striped shared counter.
//
// The paper's contention/step-complexity trade-off, attacked from the
// hardware side: instead of one hot fetch&add register, spread the count over
// S cache-line-padded slots so concurrent operations (mostly) touch disjoint
// lines. Two usage modes, which must not be mixed on one instance:
//
//   * statistic mode — increment() bumps the caller's pid-hashed stripe
//     (1 shared step, contention-free for <= S processes) and read() combines
//     all stripes with one collect (S loads). read() is monotone across
//     non-overlapping reads: every stripe is monotone and a later collect
//     loads each stripe after the earlier collect did.
//   * dispenser mode — next() hands out unique values ICounter-style. A
//     spray ticket t routes the op to stripe t mod S, the stripe's slot
//     fetch&add yields the stripe-local rank v, and the value is v*S + i.
//     Because the spray distributes tickets exactly round-robin, the handed
//     values form a dense prefix {0..T-1} once quiescent — but not in real
//     time order, so the object is quiescently consistent, not linearizable
//     (a delayed op can publish a small value after later ops finished).
//
// With elimination enabled, next() first tries to collide in an
// EliminationArray (payload mode): a leader takes a ticket for its waiter,
// hands over the resulting value, then takes its own — the waiter never
// touches a stripe, halving slot traffic under contention. Tickets are taken
// one at a time so the accounting stays exact when a waiter times out of the
// handoff and the leader keeps the offered value for itself (crash-tolerant
// elimination: see sharded/elimination.h).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/ctx.h"
#include "core/register.h"
#include "sharded/elimination.h"

namespace renamelib::sharded {

class StripedCounter {
 public:
  struct Options {
    std::size_t stripes = 64;      ///< number of padded slots
    bool elimination = false;      ///< pair-combine next() ops under contention
    std::size_t elim_width = 4;    ///< collision slots (when elimination)
    int elim_spins = 4;            ///< bounded waiter spins (when elimination)
    int elim_handoff_spins = 64;   ///< bounded claimed-waiter delivery spins
  };

  explicit StripedCounter(Options options);

  /// Statistic mode: add 1 to the caller's stripe (pid mod S). One shared step.
  void increment(Ctx& ctx);

  /// Statistic mode: combine all stripes (S loads). Monotone across
  /// non-overlapping reads; concurrent increments may or may not be included.
  std::uint64_t read(Ctx& ctx);

  /// Dispenser mode: unique values, dense {0..T-1} at quiescence (see file
  /// comment). Sequential calls return exactly 0, 1, 2, ...
  std::uint64_t next(Ctx& ctx);

  /// One value run per touched stripe: base, base + stride, ... Appended by
  /// next_batch (dispenser mode's ranged mint).
  struct Run {
    std::uint64_t base = 0;
    std::uint64_t stride = 1;
    std::uint64_t count = 0;
  };

  /// Dispenser mode, batched: reserves k spray tickets in one crossing,
  /// consumes each touched stripe with a single fetch&add, and appends one
  /// stride-S run per stripe (min(k, stripes) + 1 crossings for k values
  /// instead of 2k). The ticket multiset is identical to k single next()
  /// calls, so the dense-prefix-at-quiescence property is untouched.
  /// Elimination, which pairs individual ops, is bypassed — a batch is
  /// already combined.
  void next_batch(Ctx& ctx, std::uint64_t k, std::vector<Run>& out);

  std::size_t stripes() const noexcept { return options_.stripes; }

 private:
  /// One padded stripe; alignas keeps neighbours on distinct cache lines.
  struct alignas(64) Slot {
    Register<std::uint64_t> count{0};
  };

  /// Consumes spray ticket `t`: fetch&add on stripe t mod S, returns the
  /// interleaved value rank*S + stripe.
  std::uint64_t take(Ctx& ctx, std::uint64_t ticket);

  Options options_;
  std::unique_ptr<Slot[]> slots_;
  // Ticket dispenser for dispenser mode. Unlike a counting network's
  // entry-wire spray (where any wire distribution counts correctly), the
  // dense-prefix property REQUIRES exact round-robin tickets, so this is
  // load-bearing protocol state: an instrumented register, charged a step
  // and schedulable by the simulator's adversary like any other shared
  // access. Dispenser mode therefore costs 2 steps/op and still funnels
  // every op through one register — its win over a single fetch&add is
  // hardware-mode cache behavior (the read-modify-write that carries the
  // value lands on S spread-out lines), not paper-model step count.
  Register<std::uint64_t> spray_{0};
  std::unique_ptr<EliminationArray> elim_;
};

}  // namespace renamelib::sharded
