#include "sharded/diffracting_tree.h"

#include "core/assert.h"

namespace renamelib::sharded {

DiffractingTreeCounter::DiffractingTreeCounter(Options options,
                                               const LeafFactory& make_leaf)
    : options_(options) {
  RENAMELIB_ENSURE(options_.depth >= 1 && options_.depth <= 16,
                   "difftree depth must be in [1, 16]");
  const std::size_t leaves = std::size_t{1} << options_.depth;
  balancers_.resize(leaves);  // heap slots 1..L-1 used; slot 0 stays null
  for (std::size_t node = 1; node < leaves; ++node) {
    auto b = std::make_unique<Balancer>();
    if (options_.prism) {
      EliminationArray::Options prism_options;
      prism_options.width = options_.prism_width;
      prism_options.spins = options_.prism_spins;
      prism_options.payload = false;
      b->prism = std::make_unique<EliminationArray>(prism_options);
    }
    balancers_[node] = std::move(b);
  }
  leaves_.reserve(leaves);
  for (std::size_t i = 0; i < leaves; ++i) {
    leaves_.push_back(make_leaf());
    RENAMELIB_ENSURE(leaves_.back() != nullptr, "leaf factory returned null");
  }
}

std::uint64_t DiffractingTreeCounter::next(Ctx& ctx) {
  std::size_t node = 1;
  std::size_t idx = 0;
  for (int level = 0; level < options_.depth; ++level) {
    Balancer& b = *balancers_[node];
    int bit = -1;
    if (b.prism != nullptr) {
      // A diffracted pair leaves on opposite outputs: waiter low, leader high.
      const auto c = b.prism->try_collide(ctx);
      if (c.role == EliminationArray::Role::kWaiter) bit = 0;
      if (c.role == EliminationArray::Role::kLeader) bit = 1;
    }
    if (bit < 0) {
      bit = static_cast<int>(b.toggle.fetch_add(ctx, 1) & 1);
    }
    // The root decides the low bit of the leaf index: leaf i receives the
    // operations whose global arrival rank is congruent to i mod leaves().
    idx |= static_cast<std::size_t>(bit) << level;
    node = node * 2 + static_cast<std::size_t>(bit);
  }
  const std::uint64_t rank = leaves_[idx]->next(ctx);
  return rank * leaves_.size() + idx;
}

std::uint64_t DiffractingTreeCounter::capacity() const {
  std::uint64_t min_cap = api::ICounter::kUnbounded;
  for (const auto& leaf : leaves_) {
    if (leaf->capacity() < min_cap) min_cap = leaf->capacity();
  }
  if (min_cap == api::ICounter::kUnbounded) return api::ICounter::kUnbounded;
  // Saturate: a bound too large to represent is effectively no bound.
  if (min_cap > api::ICounter::kUnbounded / leaves_.size()) {
    return api::ICounter::kUnbounded;
  }
  return min_cap * leaves_.size();
}

}  // namespace renamelib::sharded
