#include "sharded/elimination.h"

#include "core/assert.h"

namespace renamelib::sharded {
namespace {

// Slot state encoding: kEmpty, or (pid+1) << 2 | tag. A process runs one
// operation at a time, so pid+1 uniquely identifies the parked op and the
// claim CAS cannot suffer ABA within a handshake.
constexpr std::uint64_t kEmpty = 0;
constexpr std::uint64_t kTagWaiting = 1;
constexpr std::uint64_t kTagClaimed = 2;
constexpr std::uint64_t kTagMask = 3;

constexpr std::uint64_t kNoValue = ~0ULL;

std::uint64_t waiting(std::uint64_t token) { return token << 2 | kTagWaiting; }
std::uint64_t claimed(std::uint64_t token) { return token << 2 | kTagClaimed; }

}  // namespace

EliminationArray::EliminationArray(Options options) : options_(options) {
  RENAMELIB_ENSURE(options_.width >= 1, "elimination width must be >= 1");
  RENAMELIB_ENSURE(options_.spins >= 1, "elimination spins must be >= 1");
  state_ = std::make_unique<RegisterArray<std::uint64_t>>(options_.width, kEmpty);
  if (options_.payload) {
    answer_ =
        std::make_unique<RegisterArray<std::uint64_t>>(options_.width, kNoValue);
  }
}

EliminationArray::Collision EliminationArray::try_collide(Ctx& ctx) {
  const std::uint64_t me = static_cast<std::uint64_t>(ctx.pid()) + 1;
  const std::size_t slot =
      options_.width == 1 ? 0 : static_cast<std::size_t>(
                                    ctx.rng().below(options_.width));
  Register<std::uint64_t>& st = (*state_)[slot];

  std::uint64_t seen = st.load(ctx);
  if (seen == kEmpty) {
    // Park as a waiter.
    std::uint64_t expected = kEmpty;
    if (!st.compare_exchange(ctx, expected, waiting(me))) {
      return Collision{Role::kNone, slot, 0};
    }
    for (int i = 0; i < options_.spins; ++i) {
      if (st.load(ctx) == claimed(me)) return finish_as_waiter(ctx, slot);
    }
    // Timed out: back out, unless a leader claimed us concurrently.
    expected = waiting(me);
    if (st.compare_exchange(ctx, expected, kEmpty)) {
      return Collision{Role::kNone, slot, 0};
    }
    return finish_as_waiter(ctx, slot);
  }
  if ((seen & kTagMask) == kTagWaiting) {
    // Someone is parked: try to claim them.
    if (st.compare_exchange(ctx, seen, (seen & ~kTagMask) | kTagClaimed)) {
      return Collision{Role::kLeader, slot, 0};
    }
  }
  return Collision{Role::kNone, slot, 0};
}

EliminationArray::Collision EliminationArray::finish_as_waiter(
    Ctx& ctx, std::size_t slot) {
  Collision out{Role::kWaiter, slot, 0};
  if (options_.payload) {
    Register<std::uint64_t>& ans = (*answer_)[slot];
    std::uint64_t v = ans.load(ctx);
    while (v == kNoValue) v = ans.load(ctx);  // leader is committed to deliver
    ans.store(ctx, kNoValue);
    out.value = v;
  }
  // Reset ordering matters: the answer sentinel must be restored before the
  // slot reopens, or the next pair could observe this pair's value.
  (*state_)[slot].store(ctx, kEmpty);
  return out;
}

void EliminationArray::deliver(Ctx& ctx, std::size_t slot, std::uint64_t value) {
  RENAMELIB_ENSURE(options_.payload, "deliver() requires payload mode");
  RENAMELIB_ENSURE(value != kNoValue, "~0 is reserved as the no-value sentinel");
  (*answer_)[slot].store(ctx, value);
}

}  // namespace renamelib::sharded
