#include "sharded/elimination.h"

#include "core/assert.h"
#include "obs/emit.h"

namespace renamelib::sharded {
namespace {

// Slot state encoding: kEmpty, or token << 3 | tag, where the token is a
// per-operation Ctx::mint_token() identity (pid in the high bits, a local
// sequence in the low bits). A fresh token per parked op means no slot word
// ever repeats across handshake generations, so every CAS in the protocol is
// ABA-free — in particular the waiter's timeout reclaim cannot race a
// delivery from an older pairing.
constexpr std::uint64_t kEmpty = 0;
constexpr std::uint64_t kTagWaiting = 1;
constexpr std::uint64_t kTagClaimed = 2;
constexpr std::uint64_t kTagDelivered = 3;
constexpr std::uint64_t kTagReclaimed = 4;
constexpr std::uint64_t kTagMask = 7;

constexpr std::uint64_t kNoValue = ~0ULL;

std::uint64_t waiting(std::uint64_t token) { return token << 3 | kTagWaiting; }
std::uint64_t claimed(std::uint64_t token) { return token << 3 | kTagClaimed; }
std::uint64_t delivered(std::uint64_t token) {
  return token << 3 | kTagDelivered;
}
std::uint64_t reclaimed(std::uint64_t token) {
  return token << 3 | kTagReclaimed;
}

}  // namespace

EliminationArray::EliminationArray(Options options) : options_(options) {
  RENAMELIB_ENSURE(options_.width >= 1, "elimination width must be >= 1");
  RENAMELIB_ENSURE(options_.spins >= 1, "elimination spins must be >= 1");
  RENAMELIB_ENSURE(options_.handoff_spins >= 1,
                   "elimination handoff_spins must be >= 1");
  state_ = std::make_unique<RegisterArray<std::uint64_t>>(options_.width, kEmpty);
  if (options_.payload) {
    answer_ =
        std::make_unique<RegisterArray<std::uint64_t>>(options_.width, kNoValue);
  }
}

EliminationArray::Collision EliminationArray::try_collide(Ctx& ctx) {
  const std::size_t slot =
      options_.width == 1 ? 0 : static_cast<std::size_t>(
                                    ctx.rng().below(options_.width));
  Register<std::uint64_t>& st = (*state_)[slot];

  std::uint64_t seen = st.load(ctx);
  if (seen == kEmpty) {
    // Park as a waiter under a fresh token.
    const std::uint64_t me = ctx.mint_token();
    std::uint64_t expected = kEmpty;
    if (!st.compare_exchange(ctx, expected, waiting(me))) {
      return Collision{Role::kNone, slot, 0, 0};
    }
    for (int i = 0; i < options_.spins; ++i) {
      if (st.load(ctx) == claimed(me)) return finish_as_waiter(ctx, slot, me);
    }
    // Timed out: back out, unless a leader claimed us concurrently.
    expected = waiting(me);
    if (st.compare_exchange(ctx, expected, kEmpty)) {
      return Collision{Role::kNone, slot, 0, 0};
    }
    return finish_as_waiter(ctx, slot, me);
  }
  if ((seen & kTagMask) == kTagWaiting) {
    // Someone is parked: try to claim them.
    const std::uint64_t token = seen >> 3;
    if (st.compare_exchange(ctx, seen, claimed(token))) {
      obs::emit(obs::Site::kElimPair, slot);
      return Collision{Role::kLeader, slot, token, 0};
    }
  }
  return Collision{Role::kNone, slot, 0, 0};
}

EliminationArray::Collision EliminationArray::finish_as_waiter(
    Ctx& ctx, std::size_t slot, std::uint64_t token) {
  if (!options_.payload) {
    // Pairing mode needs nothing further from the leader: reopen and go.
    (*state_)[slot].store(ctx, kEmpty);
    return Collision{Role::kWaiter, slot, token, 0};
  }
  Register<std::uint64_t>& st = (*state_)[slot];
  Register<std::uint64_t>& ans = (*answer_)[slot];
  bool handed_off = false;
  for (int i = 0; i < options_.handoff_spins; ++i) {
    if (st.load(ctx) == delivered(token)) {
      handed_off = true;
      break;
    }
  }
  if (!handed_off) {
    // The leader is slow — or dead. Walk away; the reclaim CAS is decisive
    // against the leader's CLAIMED -> DELIVERED publish.
    std::uint64_t expected = claimed(token);
    if (st.compare_exchange(ctx, expected, reclaimed(token))) {
      obs::emit(obs::Site::kElimReclaim, slot);
      return Collision{Role::kNone, slot, token, 0};
    }
    // The CAS lost to the delivery: the value is there after all.
  }
  obs::emit(obs::Site::kElimPayload, slot);
  const std::uint64_t v = ans.load(ctx);
  ans.store(ctx, kNoValue);
  // Reset ordering matters: the answer sentinel must be restored before the
  // slot reopens, or the next pair could observe this pair's value.
  st.store(ctx, kEmpty);
  return Collision{Role::kWaiter, slot, token, v};
}

bool EliminationArray::deliver(Ctx& ctx, const Collision& collision,
                               std::uint64_t value) {
  RENAMELIB_ENSURE(options_.payload, "deliver() requires payload mode");
  RENAMELIB_ENSURE(value != kNoValue, "~0 is reserved as the no-value sentinel");
  Register<std::uint64_t>& st = (*state_)[collision.slot];
  Register<std::uint64_t>& ans = (*answer_)[collision.slot];
  // Publish the value first, then flip the tag: a waiter that observes
  // DELIVERED is guaranteed to find the value.
  ans.store(ctx, value);
  std::uint64_t expected = claimed(collision.token);
  if (st.compare_exchange(ctx, expected, delivered(collision.token))) {
    return true;
  }
  // The waiter reclaimed (expected now RECLAIMED): take the value back and
  // reopen the slot — only this leader references it anymore.
  ans.store(ctx, kNoValue);
  st.store(ctx, kEmpty);
  return false;
}

}  // namespace renamelib::sharded
