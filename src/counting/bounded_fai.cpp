#include "counting/bounded_fai.h"

#include <bit>
#include <vector>

#include "core/assert.h"

namespace renamelib::counting {

BoundedFetchAndIncrement::BoundedFetchAndIncrement(
    std::uint64_t m, renaming::AdaptiveStrongRenaming::Options options)
    : m_(m), options_(options), root_(std::make_unique<Node>(m, options)) {
  RENAMELIB_ENSURE(m >= 1 && std::has_single_bit(m), "m must be a power of two");
}

BoundedFetchAndIncrement::~BoundedFetchAndIncrement() {
  std::vector<Node*> stack;
  for (int dir = 0; dir < 2; ++dir) {
    if (Node* c = root_->child[dir].load()) stack.push_back(c);
  }
  while (!stack.empty()) {
    Node* n = stack.back();
    stack.pop_back();
    for (int dir = 0; dir < 2; ++dir) {
      if (Node* c = n->child[dir].load()) stack.push_back(c);
    }
    delete n;
  }
}

BoundedFetchAndIncrement::Node* BoundedFetchAndIncrement::child_of(
    Node* parent, int dir, std::uint64_t child_l) {
  Node* existing = parent->child[dir].load(std::memory_order_acquire);
  if (existing != nullptr) return existing;
  auto fresh = std::make_unique<Node>(child_l, options_);
  Node* expected = nullptr;
  if (parent->child[dir].compare_exchange_strong(expected, fresh.get(),
                                                 std::memory_order_acq_rel)) {
    node_count_.fetch_add(1, std::memory_order_relaxed);
    return fresh.release();
  }
  return expected;
}

std::uint64_t BoundedFetchAndIncrement::fetch_and_increment(Ctx& ctx) {
  LabelScope label{ctx, "bounded_fai/op"};
  Node* node = root_.get();
  std::uint64_t l = m_;
  std::uint64_t acc = 0;
  while (l > 1) {
    if (node->test.test_and_set(ctx)) {
      node = child_of(node, 0, l / 2);
    } else {
      acc += l / 2;
      node = child_of(node, 1, l / 2);
    }
    l /= 2;
  }
  return acc;  // the 1-valued leaf always contributes 0
}

}  // namespace renamelib::counting
