// Baseline counting objects the benches compare against.
//
//   * AtomicCounter / AtomicFai — single fetch_add register: the "hardware"
//     reference point (1 step/op, linearizable).
//   * MaxRegTreeCounter — the deterministic linearizable counter of Aspnes,
//     Attiya & Censor [17] that Sec. 8.1 compares against: a binary tree
//     over the n processes with exact single-writer counts at the leaves
//     and max registers at internal nodes; increments update the root path
//     bottom-up, reads read the root. O(log n * log m) steps per increment —
//     the log-factor the paper's monotone counter removes.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "counting/max_register.h"
#include "core/register.h"

namespace renamelib::counting {

/// Linearizable counter backed by one fetch-and-add register (1 step/op).
class AtomicCounter {
 public:
  void increment(Ctx& ctx) { value_.fetch_add(ctx, 1); }
  std::uint64_t read(Ctx& ctx) { return value_.load(ctx); }
  std::uint64_t fetch_and_increment(Ctx& ctx) { return value_.fetch_add(ctx, 1); }
  /// Ranged mint: reserves k consecutive values in one crossing, returning
  /// the first (the batched-increment fast path).
  std::uint64_t fetch_and_add(Ctx& ctx, std::uint64_t k) {
    return value_.fetch_add(ctx, k);
  }

 private:
  Register<std::uint64_t> value_{0};
};

/// The [17] linearizable counter (see file comment). `n` = process count;
/// `capacity` bounds the counter value.
class MaxRegTreeCounter {
 public:
  MaxRegTreeCounter(std::size_t n, std::uint64_t capacity);

  /// Increments on behalf of ctx.pid() (leaf ownership; single writer).
  void increment(Ctx& ctx);
  std::uint64_t read(Ctx& ctx);

 private:
  std::size_t leaves_;  ///< n rounded up to a power of two
  std::uint64_t capacity_;
  std::unique_ptr<RegisterArray<std::uint64_t>> leaf_counts_;
  // Heap-indexed internal nodes 1..leaves_-1, each a max register.
  std::vector<std::unique_ptr<MaxRegister>> nodes_;
};

}  // namespace renamelib::counting
