// Monotone-consistent counter (Sec. 8.1).
//
// increment: acquire a fresh name from the adaptive strong renaming object,
//            then write it to a max register.
// read:      read the max register.
//
// Lemma 4: the counter is monotone-consistent — reads are totally ordered,
// never below the number of *completed* increments and never above the
// number of *started* increments — with expected O(log v) steps per
// increment (v = increments started so far). It is NOT linearizable
// (Sec. 8.1 gives a three-process counterexample, reproduced in the tests).
#pragma once

#include "counting/max_register.h"
#include "renaming/adaptive_strong.h"

namespace renamelib::counting {

class MonotoneCounter {
 public:
  MonotoneCounter() = default;

  /// Variant with explicit renaming options (e.g. hardware comparators for
  /// the deterministic mode of Sec. 1's Discussion).
  explicit MonotoneCounter(renaming::AdaptiveStrongRenaming::Options options)
      : renaming_(options) {}

  /// Increments the counter. Multiple increments per process are supported:
  /// each operation mints a fresh identity (ctx.mint_token()).
  void increment(Ctx& ctx);

  /// Returns a monotone-consistent count.
  std::uint64_t read(Ctx& ctx);

  struct IncrementStats {
    std::uint64_t name = 0;
    std::uint64_t steps = 0;
  };
  IncrementStats increment_instrumented(Ctx& ctx);

 private:
  renaming::AdaptiveStrongRenaming renaming_;
  UnboundedMaxRegister max_;
};

}  // namespace renamelib::counting
