#include "counting/monotone_counter.h"

namespace renamelib::counting {

void MonotoneCounter::increment(Ctx& ctx) {
  LabelScope label{ctx, "monotone_counter/inc"};
  const std::uint64_t name = renaming_.rename(ctx, ctx.mint_token());
  max_.write_max(ctx, name);
}

MonotoneCounter::IncrementStats MonotoneCounter::increment_instrumented(Ctx& ctx) {
  const std::uint64_t before = ctx.steps();
  LabelScope label{ctx, "monotone_counter/inc"};
  IncrementStats stats;
  stats.name = renaming_.rename(ctx, ctx.mint_token());
  max_.write_max(ctx, stats.name);
  stats.steps = ctx.steps() - before;
  return stats;
}

std::uint64_t MonotoneCounter::read(Ctx& ctx) {
  LabelScope label{ctx, "monotone_counter/read"};
  return max_.read(ctx);
}

}  // namespace renamelib::counting
