// Max registers (Aspnes–Attiya–Censor [17]).
//
// A max register supports write_max(v) and read(), where read returns the
// largest value written so far; [17] gives a linearizable construction of
// cost O(log m) for capacity m: a binary tree of switch bits, where writes
// descend to the leaf for v setting the switches of right-turns bottom-up,
// and reads follow switches downward.
//
// The paper's monotone counter (Sec. 8.1) is "rename, then write_max".
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>

#include "core/register.h"

namespace renamelib::counting {

/// Bounded max register over values 0..capacity-1 (capacity rounded up to a
/// power of two). Linearizable; O(log capacity) steps per operation.
class MaxRegister {
 public:
  explicit MaxRegister(std::uint64_t capacity);

  std::uint64_t capacity() const noexcept { return capacity_; }

  /// Raises the stored maximum to at least `v` (v < capacity()).
  void write_max(Ctx& ctx, std::uint64_t v);

  /// Returns the largest value written by any linearized write_max (0 if
  /// none yet).
  std::uint64_t read(Ctx& ctx);

 private:
  std::uint64_t capacity_;        ///< power of two
  std::uint32_t height_;          ///< log2(capacity)
  // Heap-indexed switch bits: node 1 covers the full range, children 2i and
  // 2i+1 split it. switch set => the maximum lives in the right subtree.
  RegisterArray<std::uint8_t> switches_;
};

/// Practically-unbounded max register: values are bucketed by bit length,
/// with a lazily allocated bounded tree per bucket and a small bounded max
/// register holding the highest active bucket. Cost is O(log v) per
/// operation — the bucket index fits in 5 bits, so the top-level register
/// adds O(1). Supports values up to 2^kMaxBits - 1 (~67M), far beyond any
/// feasible increment count in an execution.
class UnboundedMaxRegister {
 public:
  UnboundedMaxRegister() = default;

  void write_max(Ctx& ctx, std::uint64_t v);
  std::uint64_t read(Ctx& ctx);

  static constexpr std::uint32_t kMaxBits = 26;

 private:
  MaxRegister& bucket(std::uint32_t b);

  MaxRegister top_{kMaxBits + 2};  ///< holds 1 + highest active bucket index
  std::mutex alloc_mu_;            ///< guards lazy bucket allocation only
  std::array<std::unique_ptr<MaxRegister>, kMaxBits> buckets_;
};

}  // namespace renamelib::counting
