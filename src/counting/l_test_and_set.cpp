#include "counting/l_test_and_set.h"

namespace renamelib::counting {

LTestAndSet::LTestAndSet(std::uint64_t l,
                         renaming::AdaptiveStrongRenaming::Options options)
    : l_(l), renaming_(options) {}

bool LTestAndSet::test_and_set(Ctx& ctx) {
  LabelScope label{ctx, "l_tas/op"};
  if (l_ == 0) return false;  // 0 winners: trivially closed
  if (doorway_closed_.load(ctx) != 0) return false;
  const std::uint64_t name = renaming_.rename(ctx, ctx.mint_token());
  if (name <= l_) return true;
  doorway_closed_.store(ctx, 1);
  return false;
}

}  // namespace renamelib::counting
