// Linearizable l-test-and-set (Sec. 8.2, Algorithm 1).
//
// Generalizes test-and-set to exactly l winners: the first l operations (in
// linearization order) return true, the rest false. Implementation: run the
// adaptive strong renaming protocol behind a doorway bit; win iff the
// acquired name is <= l; a loser closes the doorway on the way out, so
// later arrivals cannot sneak into the namespace and (Lemma 5) the object
// linearizes. Expected O(log k) steps.
#pragma once

#include <cstdint>

#include "core/register.h"
#include "renaming/adaptive_strong.h"

namespace renamelib::counting {

class LTestAndSet {
 public:
  explicit LTestAndSet(std::uint64_t l)
      : LTestAndSet(l, renaming::AdaptiveStrongRenaming::Options{}) {}
  LTestAndSet(std::uint64_t l,
              renaming::AdaptiveStrongRenaming::Options options);

  std::uint64_t l() const noexcept { return l_; }

  /// One-shot per identity: each call mints a fresh identity internally.
  /// Returns true for exactly the first l linearized operations.
  bool test_and_set(Ctx& ctx);

 private:
  std::uint64_t l_;
  Register<std::uint8_t> doorway_closed_{0};
  renaming::AdaptiveStrongRenaming renaming_;
};

}  // namespace renamelib::counting
