// Linearizable m-valued fetch-and-increment (Sec. 8.2, Algorithm 2).
//
// Recursive tree: an l-valued object is an l/2-test-and-set plus two
// l/2-valued children. Winners of the test go left (values 0..l/2-1);
// losers go right and add l/2. Leaves are 0-valued objects that always
// return 0. Once m operations have completed the object keeps returning
// m-1 (the paper's saturating sequential specification).
//
// Theorem 6: linearizable, O(log k log m) steps in expectation. Nodes (each
// containing a full adaptive renaming object) are materialized on first
// touch, so memory is proportional to the values actually handed out.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "counting/l_test_and_set.h"

namespace renamelib::counting {

class BoundedFetchAndIncrement {
 public:
  /// `m` must be a power of two (the paper reduces general m to this case).
  explicit BoundedFetchAndIncrement(std::uint64_t m)
      : BoundedFetchAndIncrement(m, renaming::AdaptiveStrongRenaming::Options{}) {}
  BoundedFetchAndIncrement(std::uint64_t m,
                           renaming::AdaptiveStrongRenaming::Options options);
  ~BoundedFetchAndIncrement();
  BoundedFetchAndIncrement(const BoundedFetchAndIncrement&) = delete;
  BoundedFetchAndIncrement& operator=(const BoundedFetchAndIncrement&) = delete;

  std::uint64_t m() const noexcept { return m_; }

  /// Returns the next counter value (0, 1, 2, ..., saturating at m-1).
  std::uint64_t fetch_and_increment(Ctx& ctx);

  /// Nodes materialized so far (quiescent diagnostic).
  std::size_t materialized_nodes() const noexcept { return node_count_.load(); }

 private:
  struct Node {
    explicit Node(std::uint64_t l,
                  const renaming::AdaptiveStrongRenaming::Options& options)
        : test(l / 2, options) {}
    LTestAndSet test;  ///< l/2-test-and-set for an l-valued node
    std::atomic<Node*> child[2] = {nullptr, nullptr};
  };

  Node* child_of(Node* parent, int dir, std::uint64_t child_l);

  std::uint64_t m_;
  renaming::AdaptiveStrongRenaming::Options options_;
  std::unique_ptr<Node> root_;
  std::atomic<std::size_t> node_count_{1};
};

}  // namespace renamelib::counting
