#include "counting/max_register.h"

#include <bit>
#include <vector>

#include "core/assert.h"

namespace renamelib::counting {

MaxRegister::MaxRegister(std::uint64_t capacity)
    : capacity_(std::bit_ceil(std::max<std::uint64_t>(capacity, 2))),
      height_(static_cast<std::uint32_t>(std::countr_zero(capacity_))),
      switches_(capacity_ - 1, 0) {
  RENAMELIB_ENSURE(capacity >= 1 && capacity <= (1ULL << 26),
                   "max register capacity out of range (switch tree memory)");
}

void MaxRegister::write_max(Ctx& ctx, std::uint64_t v) {
  RENAMELIB_ENSURE(v < capacity_, "value exceeds max register capacity");
  LabelScope label{ctx, "max_register/write"};

  // Descend to v's leaf. [17]: a write into the left subtree is suppressed
  // once the node's switch is set (a larger value is already present); a
  // write into the right subtree recurses first and sets the switch on the
  // way back up (bottom-up), so readers that see a switch always find the
  // written value below it.
  std::vector<std::uint64_t> right_turns;  // heap nodes whose switch to set
  std::uint64_t node = 1;
  for (std::uint32_t level = 0; level < height_; ++level) {
    const bool right = ((v >> (height_ - 1 - level)) & 1) != 0;
    if (right) {
      right_turns.push_back(node);
      node = 2 * node + 1;
    } else {
      if (switches_[node - 1].load(ctx) != 0) return;  // larger value present
      node = 2 * node;
    }
  }
  for (auto it = right_turns.rbegin(); it != right_turns.rend(); ++it) {
    switches_[*it - 1].store(ctx, 1);
  }
}

std::uint64_t MaxRegister::read(Ctx& ctx) {
  LabelScope label{ctx, "max_register/read"};
  std::uint64_t node = 1;
  std::uint64_t value = 0;
  for (std::uint32_t level = 0; level < height_; ++level) {
    const bool right = switches_[node - 1].load(ctx) != 0;
    value = (value << 1) | (right ? 1 : 0);
    node = 2 * node + (right ? 1 : 0);
  }
  return value;
}

MaxRegister& UnboundedMaxRegister::bucket(std::uint32_t b) {
  RENAMELIB_ENSURE(b >= 1 && b < kMaxBits, "value too large for max register");
  std::scoped_lock lock{alloc_mu_};
  auto& slot = buckets_[b];
  if (!slot) {
    // Bucket b holds values with bit length b+1, i.e. offsets in [0, 2^b).
    slot = std::make_unique<MaxRegister>(1ULL << b);
  }
  return *slot;
}

void UnboundedMaxRegister::write_max(Ctx& ctx, std::uint64_t v) {
  if (v == 0) return;
  LabelScope label{ctx, "umax_register/write"};
  const std::uint32_t b = static_cast<std::uint32_t>(std::bit_width(v) - 1);
  // Bucket offset first, top index second: a reader that observes bucket b
  // active will find this value (or a larger one) already in the bucket.
  if (b > 0) bucket(b).write_max(ctx, v - (1ULL << b));
  top_.write_max(ctx, b + 1);
}

std::uint64_t UnboundedMaxRegister::read(Ctx& ctx) {
  LabelScope label{ctx, "umax_register/read"};
  const std::uint64_t t = top_.read(ctx);
  if (t == 0) return 0;
  const std::uint32_t b = static_cast<std::uint32_t>(t - 1);
  const std::uint64_t base = 1ULL << b;
  return b == 0 ? base : base + bucket(b).read(ctx);
}

}  // namespace renamelib::counting
