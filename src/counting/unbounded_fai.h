// Unbounded linearizable fetch-and-increment — toward the paper's "optimal
// linearizable counter" future-work direction (Sec. 9).
//
// Chains the bounded m-valued objects of Sec. 8.2 in epochs of doubling
// capacity. Epoch e (capacity m_e) serves values base_e .. base_e + m_e - 2
// through its bounded object; its last value base_e + m_e - 1 is claimed by
// the unique process that advances the epoch pointer (CAS), so the assigned
// values are exactly 0, 1, 2, ... with no gaps. Operations that observe a
// saturated epoch and lose the advancing CAS retry in the next epoch.
//
// Linearizability sketch (checked by the Wing–Gong tests): each epoch's
// values linearize within the epoch by the bounded object's linearizability;
// the epoch pointer is monotone, so an operation invoked after another
// responded can never obtain a value from an earlier epoch; and the epoch
// advancer's value sits exactly between the two epochs.
//
// Amortized cost: O(log k log m_e) per op in the current epoch, i.e.
// O(log k log v) for value v.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

#include "counting/bounded_fai.h"

namespace renamelib::counting {

class UnboundedFetchAndIncrement {
 public:
  explicit UnboundedFetchAndIncrement(
      renaming::AdaptiveStrongRenaming::Options options =
          renaming::AdaptiveStrongRenaming::Options{});
  ~UnboundedFetchAndIncrement();

  /// Returns the next value: 0, 1, 2, ... (no bound, no gaps).
  std::uint64_t fetch_and_increment(Ctx& ctx);

  /// Current epoch index (quiescent diagnostic).
  std::uint64_t current_epoch() const { return epoch_.peek(); }

 private:
  static constexpr std::uint64_t kFirstCapacity = 8;
  static constexpr std::uint32_t kMaxEpochs = 40;

  BoundedFetchAndIncrement& epoch_object(std::uint64_t e);
  static std::uint64_t capacity_of(std::uint64_t e);
  static std::uint64_t base_of(std::uint64_t e);

  renaming::AdaptiveStrongRenaming::Options options_;
  Register<std::uint64_t> epoch_{0};
  // Lock-free epoch table: slots are CAS-published so epoch turnover never
  // serializes concurrent operations behind a mutex (allocator-level
  // bookkeeping, like the paper's assumption of pre-existing objects; the
  // protocol's own steps all go through Register/Ctx).
  std::array<std::atomic<BoundedFetchAndIncrement*>, kMaxEpochs> epochs_{};
};

}  // namespace renamelib::counting
