#include "counting/unbounded_fai.h"

#include "core/assert.h"

namespace renamelib::counting {

UnboundedFetchAndIncrement::UnboundedFetchAndIncrement(
    renaming::AdaptiveStrongRenaming::Options options)
    : options_(options) {}

UnboundedFetchAndIncrement::~UnboundedFetchAndIncrement() {
  for (auto& slot : epochs_) delete slot.load(std::memory_order_acquire);
}

std::uint64_t UnboundedFetchAndIncrement::capacity_of(std::uint64_t e) {
  return kFirstCapacity << e;
}

std::uint64_t UnboundedFetchAndIncrement::base_of(std::uint64_t e) {
  // base_e = sum of capacities of epochs 0..e-1 = kFirstCapacity*(2^e - 1).
  return kFirstCapacity * ((1ULL << e) - 1);
}

BoundedFetchAndIncrement& UnboundedFetchAndIncrement::epoch_object(
    std::uint64_t e) {
  RENAMELIB_ENSURE(e < kMaxEpochs, "epoch overflow (2^43 increments?)");
  auto& slot = epochs_[e];
  BoundedFetchAndIncrement* existing = slot.load(std::memory_order_acquire);
  if (existing != nullptr) return *existing;
  // CAS-publish: losers delete their candidate and adopt the winner's.
  auto* candidate = new BoundedFetchAndIncrement(capacity_of(e), options_);
  if (slot.compare_exchange_strong(existing, candidate,
                                   std::memory_order_acq_rel,
                                   std::memory_order_acquire)) {
    return *candidate;
  }
  delete candidate;
  return *existing;
}

std::uint64_t UnboundedFetchAndIncrement::fetch_and_increment(Ctx& ctx) {
  LabelScope label{ctx, "unbounded_fai/op"};
  for (;;) {
    const std::uint64_t e = epoch_.load(ctx);
    const std::uint64_t m = capacity_of(e);
    const std::uint64_t v = epoch_object(e).fetch_and_increment(ctx);
    if (v < m - 1) return base_of(e) + v;
    // Saturated epoch: the unique winner of the advancing CAS claims the
    // epoch's final value; everyone else retries in the next epoch.
    std::uint64_t expected = e;
    if (epoch_.compare_exchange(ctx, expected, e + 1)) {
      return base_of(e) + m - 1;
    }
  }
}

}  // namespace renamelib::counting
