#include "counting/baselines.h"

#include <bit>

#include "core/assert.h"

namespace renamelib::counting {

MaxRegTreeCounter::MaxRegTreeCounter(std::size_t n, std::uint64_t capacity)
    : leaves_(std::bit_ceil(std::max<std::size_t>(n, 2))), capacity_(capacity) {
  RENAMELIB_ENSURE(n >= 1, "need at least one process");
  leaf_counts_ = std::make_unique<RegisterArray<std::uint64_t>>(leaves_, 0);
  nodes_.resize(leaves_);  // index 0 unused; 1..leaves_-1 internal
  for (std::size_t i = 1; i < leaves_; ++i) {
    nodes_[i] = std::make_unique<MaxRegister>(capacity_);
  }
}

void MaxRegTreeCounter::increment(Ctx& ctx) {
  LabelScope label{ctx, "maxreg_tree_counter/inc"};
  const std::size_t leaf = static_cast<std::size_t>(ctx.pid());
  RENAMELIB_ENSURE(leaf < leaves_, "pid exceeds counter width");

  // Single-writer exact count at the leaf.
  auto& mine = (*leaf_counts_)[leaf];
  mine.store(ctx, mine.load(ctx) + 1);

  // Refresh the path to the root: each node's value is the sum of its two
  // children's current values, pushed through a max register ([17]).
  std::size_t node = (leaves_ + leaf) / 2;
  while (node >= 1) {
    const std::size_t left = 2 * node;
    const std::size_t right = 2 * node + 1;
    auto child_value = [&](std::size_t c) -> std::uint64_t {
      if (c >= leaves_) return (*leaf_counts_)[c - leaves_].load(ctx);
      return nodes_[c]->read(ctx);
    };
    const std::uint64_t sum = child_value(left) + child_value(right);
    nodes_[node]->write_max(ctx, std::min<std::uint64_t>(sum, capacity_ - 1));
    node /= 2;
  }
}

std::uint64_t MaxRegTreeCounter::read(Ctx& ctx) {
  LabelScope label{ctx, "maxreg_tree_counter/read"};
  if (leaves_ == 1) return (*leaf_counts_)[0].load(ctx);
  return nodes_[1]->read(ctx);
}

}  // namespace renamelib::counting
