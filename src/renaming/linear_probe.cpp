#include "renaming/linear_probe.h"

#include "core/assert.h"

namespace renamelib::renaming {

LinearProbeRenaming::LinearProbeRenaming(std::uint64_t capacity, bool hardware_tas)
    : capacity_(capacity), hardware_(hardware_tas) {
  RENAMELIB_ENSURE(capacity >= 1, "capacity must be >= 1");
  if (hardware_) {
    hw_slots_ = std::make_unique<tas::HardwareTas[]>(capacity);
  } else {
    rr_slots_.reserve(capacity);
    for (std::uint64_t i = 0; i < capacity; ++i) {
      rr_slots_.push_back(std::make_unique<tas::RatRaceTas>());
    }
  }
}

LinearProbeRenaming::Outcome LinearProbeRenaming::rename_instrumented(Ctx& ctx) {
  LabelScope label{ctx, "linear_probe/rename"};
  Outcome out;
  for (std::uint64_t slot = 0; slot < capacity_; ++slot) {
    ++out.probes;
    const bool won = hardware_ ? hw_slots_[slot].test_and_set(ctx)
                               : rr_slots_[slot]->test_and_set(ctx);
    if (won) {
      out.name = slot + 1;
      return out;
    }
  }
  RENAMELIB_ENSURE(false, "linear probe capacity exhausted");
}

std::uint64_t LinearProbeRenaming::rename(Ctx& ctx, std::uint64_t /*initial_id*/) {
  return rename_instrumented(ctx).name;
}

}  // namespace renamelib::renaming
