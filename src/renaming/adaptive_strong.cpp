#include "renaming/adaptive_strong.h"

#include "core/assert.h"

namespace renamelib::renaming {

AdaptiveStrongRenaming::AdaptiveStrongRenaming(Options options)
    : options_(options) {
  RENAMELIB_ENSURE(options_.max_temp_name >= 2 &&
                       options_.max_temp_name <= (1ULL << 31),
                   "max_temp_name must be in [2, 2^31]");
}

bool AdaptiveStrongRenaming::compete(Ctx& ctx, const adaptive::CompRef& comp,
                                     bool entered_lo) {
  Shard& shard = shards_[comp.component];
  const std::uint64_t key = comp.key();
  if (options_.comparators == AdaptiveComparatorKind::kRandomized) {
    tas::TwoProcessTas* arbiter;
    {
      std::scoped_lock lock{shard.mu};
      auto& slot = shard.rnd[key];
      if (!slot) slot = std::make_unique<tas::TwoProcessTas>();
      arbiter = slot.get();
    }
    return arbiter->compete(ctx, entered_lo ? 0 : 1);
  }
  tas::HardwareTas* arbiter;
  {
    std::scoped_lock lock{shard.mu};
    auto& slot = shard.hw[key];
    if (!slot) slot = std::make_unique<tas::HardwareTas>();
    arbiter = slot.get();
  }
  return arbiter->test_and_set(ctx);
}

AdaptiveStrongRenaming::Outcome AdaptiveStrongRenaming::rename_instrumented(
    Ctx& ctx, std::uint64_t initial_id) {
  RENAMELIB_ENSURE(initial_id != 0, "initial ids must be nonzero");
  LabelScope label{ctx, "adaptive_strong/rename"};
  Outcome out;

  // Stage 1: temporary name from the splitter tree; re-descend in the
  // (w.h.p. negligible) case the name exceeds the supported port range.
  for (;;) {
    out.temp_name = temp_name_.get_name(ctx, initial_id);
    if (out.temp_name <= options_.max_temp_name) break;
    ++out.temp_retries;
  }

  // Stage 2: route through the adaptive renaming network.
  LabelScope route{ctx, "adaptive_strong/route"};
  out.name = network_.route(
      out.temp_name, [&](const adaptive::CompRef& comp, bool entered_lo) {
        ++out.comparators;
        return compete(ctx, comp, entered_lo);
      });
  return out;
}

std::uint64_t AdaptiveStrongRenaming::rename(Ctx& ctx, std::uint64_t initial_id) {
  return rename_instrumented(ctx, initial_id).name;
}

std::size_t AdaptiveStrongRenaming::materialized_comparators() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::scoped_lock lock{shard.mu};
    total += shard.rnd.size() + shard.hw.size();
  }
  return total;
}

}  // namespace renamelib::renaming
