// Renaming interfaces (problem statement of Sec. 2).
//
// A renaming object assigns each participating process a unique name.
//   * tight:          names are in 1..n (n = max processes),
//   * adaptive tight: names are in 1..k (k = participants in the execution).
// Each process requests at most one name per (process, request-id) identity;
// counters (Sec. 8) issue multiple requests by minting fresh identities.
#pragma once

#include <cstdint>

#include "core/ctx.h"

namespace renamelib::renaming {

class IRenaming {
 public:
  virtual ~IRenaming() = default;

  /// Returns this requester's unique name (>= 1). `initial_id` is the
  /// requester's identity from the (possibly unbounded) initial namespace;
  /// it must be nonzero and unique across requests.
  virtual std::uint64_t rename(Ctx& ctx, std::uint64_t initial_id) = 0;
};

}  // namespace renamelib::renaming
