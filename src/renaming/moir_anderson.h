// Moir–Anderson splitter-grid renaming — the classic *deterministic*
// wait-free renaming algorithm ([5, 6, 7] in the paper's related work).
//
// A triangular grid of splitters: a process starts at the top-left corner;
// STOP acquires the current node's name, RIGHT moves right, DOWN moves
// down. With k participants every process stops within the leading
// k x k triangle, so names are at most k(k+1)/2 — deterministic, adaptive,
// but quadratically loose, and each process takes O(k) steps.
//
// This is the deterministic foil for the paper's randomized algorithms: no
// coins, namespace k(k+1)/2 and Theta(k) steps, versus randomized tight 1..k
// in polylog steps. bench_baseline_comparison includes it.
#pragma once

#include <cstdint>
#include <memory>

#include "renaming/renaming.h"
#include "splitter/splitter.h"

namespace renamelib::renaming {

class MoirAndersonRenaming final : public IRenaming {
 public:
  /// Supports up to `max_processes` participants (grid side length).
  explicit MoirAndersonRenaming(std::size_t max_processes);

  std::size_t max_processes() const noexcept { return side_; }

  /// Deterministic: no coin flips. Names are in 1..k(k+1)/2 for k
  /// participants; `initial_id` must be nonzero and unique.
  std::uint64_t rename(Ctx& ctx, std::uint64_t initial_id) override;

  struct Outcome {
    std::uint64_t name = 0;
    std::uint64_t moves = 0;  ///< splitters visited
  };
  Outcome rename_instrumented(Ctx& ctx, std::uint64_t initial_id);

 private:
  /// Diagonal numbering of grid node (row, col): nodes on diagonal
  /// d = row + col get names d(d+1)/2 + 1 .. (d+1)(d+2)/2, so the first
  /// k x k triangle holds exactly the names 1..k(k+1)/2.
  std::uint64_t name_of(std::size_t row, std::size_t col) const;
  splitter::Splitter& at(std::size_t row, std::size_t col);

  std::size_t side_;
  std::unique_ptr<splitter::Splitter[]> grid_;  ///< triangle, row-major packed
};

}  // namespace renamelib::renaming
