// Renaming networks (Sec. 5): a sorting network whose comparators are
// replaced by two-process test-and-set objects.
//
// A process enters on the input wire matching its initial name (1..M),
// competes at each comparator it meets — winning moves it to the lo wire
// ("up"), losing to the hi wire — and returns 1 + its final wire as its
// name. Theorem 1: with k participants the outputs are exactly unique names
// in 1..k, in every execution, and the number of comparators a process
// traverses is at most the network depth.
//
// Comparator objects come in two flavors (Sec. 1 Discussion):
//   * randomized TwoProcessTas — registers only, expected O(1) per
//     comparator, termination with probability 1;
//   * HardwareTas — deterministic unit-cost arbitration, making the whole
//     renaming network deterministic.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "renaming/renaming.h"
#include "sortnet/comparator_network.h"
#include "tas/hardware_tas.h"
#include "tas/two_process_tas.h"

namespace renamelib::renaming {

enum class ComparatorKind { kRandomized, kHardware };

class RenamingNetwork final : public IRenaming {
 public:
  /// Builds the renaming network over a *sorting* network `net`; the caller
  /// is responsible for `net` actually sorting (verify.h).
  explicit RenamingNetwork(sortnet::ComparatorNetwork net,
                           ComparatorKind kind = ComparatorKind::kRandomized);

  /// Initial namespace size M (number of input ports).
  std::uint64_t initial_namespace() const noexcept { return net_.width(); }

  /// Runs the network from input port `initial_id` (1..M); returns the
  /// 1-based output port = the acquired name.
  std::uint64_t rename(Ctx& ctx, std::uint64_t initial_id) override;

  /// Comparators traversed by the most recent rename() of this ctx cannot be
  /// tracked statelessly; use rename_counted for instrumentation.
  struct Routed {
    std::uint64_t name = 0;
    std::uint64_t comparators = 0;  ///< TAS objects competed in
  };
  Routed rename_counted(Ctx& ctx, std::uint64_t initial_id);

  const sortnet::ComparatorNetwork& network() const noexcept { return net_; }

 private:
  bool compete(Ctx& ctx, std::size_t comparator_index, int side);

  sortnet::ComparatorNetwork net_;
  ComparatorKind kind_;
  std::vector<std::vector<std::uint32_t>> per_wire_;
  // One arbiter per comparator (index-aligned with net_.comparators()).
  std::unique_ptr<tas::TwoProcessTas[]> randomized_;
  std::unique_ptr<tas::HardwareTas[]> hardware_;
};

}  // namespace renamelib::renaming
