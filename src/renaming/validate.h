// Output validators for renaming executions — the invariants of Sec. 2:
// uniqueness (no two processes share a name) and namespace tightness
// (names within 1..bound; bound = k for adaptive tight, n for tight).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace renamelib::renaming {

struct ValidationResult {
  bool ok = true;
  std::string error;  ///< empty when ok
};

/// Checks uniqueness of all assigned names (>= 1 each).
ValidationResult check_unique(const std::vector<std::uint64_t>& names);

/// Checks uniqueness and that every name is in [1, bound].
ValidationResult check_tight(const std::vector<std::uint64_t>& names,
                             std::uint64_t bound);

}  // namespace renamelib::renaming
