// Linear-probing renaming — the classic baseline (Sec. 1, citing [4, 11]):
// compete in test-and-set objects 1, 2, 3, ... in order until one is won.
// Tight and adaptive (names in 1..k) but with Theta(k) probes per process —
// the linear cost our algorithms beat exponentially.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "renaming/renaming.h"
#include "tas/hardware_tas.h"
#include "tas/rat_race_tas.h"

namespace renamelib::renaming {

class LinearProbeRenaming final : public IRenaming {
 public:
  /// `capacity` bounds the number of names ever requested (the list of TAS
  /// objects; the paper assumes an infinite list).
  explicit LinearProbeRenaming(std::uint64_t capacity, bool hardware_tas = true);

  std::uint64_t rename(Ctx& ctx, std::uint64_t initial_id) override;

  struct Outcome {
    std::uint64_t name = 0;
    std::uint64_t probes = 0;
  };
  Outcome rename_instrumented(Ctx& ctx);

 private:
  std::uint64_t capacity_;
  bool hardware_;
  std::unique_ptr<tas::HardwareTas[]> hw_slots_;
  std::vector<std::unique_ptr<tas::RatRaceTas>> rr_slots_;
};

}  // namespace renamelib::renaming
