// BitBatching (Sec. 4): non-adaptive strong renaming into exactly n names
// with O(log^2 n) test-and-set probes per process, w.h.p.
//
// The n processes share a vector of n test-and-set objects partitioned into
// batches of geometrically decreasing size (Fig. 1):
//   B_1 = first n/2 slots, B_2 = next n/4, ..., B_l ~ the last Theta(log n),
// with l = floor(log2(n / log2 n)).
//
// Stage 1: in each batch B_1..B_{l-1} the process probes 3*log2(n) uniformly
// random slots of the batch, then *every* slot of B_l, stopping at its first
// win; the slot index (1-based) is its name. Stage 2 (reached with
// probability <= 1/n^c): probe all slots 1..n left to right.
//
// The per-slot objects are RatRace adaptive TAS [12] by default (as in the
// paper), or unit-cost hardware TAS for the deterministic variant.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "renaming/renaming.h"
#include "tas/hardware_tas.h"
#include "tas/rat_race_tas.h"

namespace renamelib::renaming {

enum class SlotTasKind { kRatRace, kHardware };

class BitBatching final : public IRenaming {
 public:
  /// `n` is the (non-adaptive) namespace size and max process count; any
  /// n >= 2 is accepted (the paper assumes a power of two for exposition).
  explicit BitBatching(std::uint64_t n, SlotTasKind kind = SlotTasKind::kRatRace);

  std::uint64_t n() const noexcept { return n_; }

  /// Batch boundaries: batch i (1-based, i <= batch_count()) covers slot
  /// indices [batch_begin(i), batch_end(i)) in 0-based slot coordinates.
  std::size_t batch_count() const noexcept { return ell_; }
  std::uint64_t batch_begin(std::size_t i) const;
  std::uint64_t batch_end(std::size_t i) const;

  std::uint64_t rename(Ctx& ctx, std::uint64_t initial_id) override;

  /// Instrumented variant: reports probes (TAS objects entered) and whether
  /// stage 2 was reached — the quantities of Lemma 1 / Corollaries 1-2.
  struct Outcome {
    std::uint64_t name = 0;
    std::uint64_t probes = 0;
    bool entered_stage2 = false;
  };
  Outcome rename_instrumented(Ctx& ctx);

 private:
  bool probe(Ctx& ctx, std::uint64_t slot);

  std::uint64_t n_;
  std::size_t ell_;
  std::uint64_t probes_per_batch_;  ///< 3*ceil(log2 n)
  SlotTasKind kind_;
  std::vector<std::unique_ptr<tas::RatRaceTas>> ratrace_slots_;
  std::unique_ptr<tas::HardwareTas[]> hardware_slots_;
};

}  // namespace renamelib::renaming
