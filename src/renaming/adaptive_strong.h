// Adaptive strong renaming (Sec. 6.2) — the paper's headline algorithm.
//
// Stage 1 (TempName): acquire a unique temporary name from the randomized
// splitter tree; with k participants names are <= k^c w.h.p. and cost
// O(log k) steps w.h.p.
//
// Stage 2: walk the unbounded adaptive renaming network (Sec. 6.1 structure,
// lazily traversed) from input port = temporary name; each comparator is a
// two-process test-and-set, winner up. The output port is the final name.
//
// Theorem 3: names are exactly 1..k; expected O(log k) steps with an AKS
// base. With our constructible Batcher base the traversal is O(log^2 k)
// comparators (c = 2 in Theorem 2) — the trade the paper itself recommends
// (Sec. 1 Discussion); benches report both the measured Batcher cost and the
// projected AKS cost.
//
// Comparator arbitration objects are materialized on first touch, keyed by
// the comparator's canonical identity, so the object's memory footprint is
// proportional to what executions actually visit, not to the (astronomical)
// network size.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "adaptive/adaptive_network.h"
#include "renaming/renaming.h"
#include "splitter/temp_name.h"
#include "tas/hardware_tas.h"
#include "tas/two_process_tas.h"

namespace renamelib::renaming {

/// Comparator arbitration flavor (see renaming_network.h).
enum class AdaptiveComparatorKind { kRandomized, kHardware };

class AdaptiveStrongRenaming final : public IRenaming {
 public:
  struct Options {
    AdaptiveComparatorKind comparators = AdaptiveComparatorKind::kRandomized;
    /// Temporary names above this trigger a fresh TempName descent, keeping
    /// ports within the supported stage geometry (2^31).
    std::uint64_t max_temp_name = 1ULL << 31;
  };

  AdaptiveStrongRenaming() : AdaptiveStrongRenaming(Options{}) {}
  explicit AdaptiveStrongRenaming(Options options);

  /// Acquires a name in 1..k (k = total requests so far, adaptively).
  std::uint64_t rename(Ctx& ctx, std::uint64_t initial_id) override;

  struct Outcome {
    std::uint64_t name = 0;
    std::uint64_t temp_name = 0;
    std::uint64_t comparators = 0;  ///< TAS objects competed in (stage 2)
    std::uint64_t temp_retries = 0;
  };
  Outcome rename_instrumented(Ctx& ctx, std::uint64_t initial_id);

  /// Arbiters materialized so far (quiescent diagnostic).
  std::size_t materialized_comparators() const;

  const adaptive::AdaptiveNetwork& network() const noexcept { return network_; }

 private:
  /// Lazily materialized arbiter objects, sharded per network component.
  /// The shard mutex guards only the map (allocator-level bookkeeping, like
  /// the paper's assumption of a pre-existing infinite network); the TAS
  /// protocol itself runs on registers outside the lock.
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::uint64_t, std::unique_ptr<tas::TwoProcessTas>> rnd;
    std::unordered_map<std::uint64_t, std::unique_ptr<tas::HardwareTas>> hw;
  };

  bool compete(Ctx& ctx, const adaptive::CompRef& comp, bool entered_lo);

  Options options_;
  splitter::TempName temp_name_;
  adaptive::AdaptiveNetwork network_;
  Shard shards_[adaptive::CompRef::component_limit()];
};

}  // namespace renamelib::renaming
