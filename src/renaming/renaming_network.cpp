#include "renaming/renaming_network.h"

#include <algorithm>

#include "core/assert.h"

namespace renamelib::renaming {

RenamingNetwork::RenamingNetwork(sortnet::ComparatorNetwork net,
                                 ComparatorKind kind)
    : net_(std::move(net)), kind_(kind), per_wire_(net_.per_wire()) {
  const std::size_t n = net_.size();
  if (kind_ == ComparatorKind::kRandomized) {
    randomized_ = std::make_unique<tas::TwoProcessTas[]>(n);
  } else {
    hardware_ = std::make_unique<tas::HardwareTas[]>(n);
  }
}

bool RenamingNetwork::compete(Ctx& ctx, std::size_t comparator_index, int side) {
  if (kind_ == ComparatorKind::kRandomized) {
    return randomized_[comparator_index].compete(ctx, side);
  }
  return hardware_[comparator_index].test_and_set(ctx);
}

RenamingNetwork::Routed RenamingNetwork::rename_counted(Ctx& ctx,
                                                        std::uint64_t initial_id) {
  RENAMELIB_ENSURE(initial_id >= 1 && initial_id <= net_.width(),
                   "initial name out of the network's input range");
  LabelScope label{ctx, "renaming_network/route"};

  std::uint32_t wire = static_cast<std::uint32_t>(initial_id - 1);
  std::uint64_t traversed = 0;
  std::size_t next_index = 0;  // first comparator position not yet passed
  for (;;) {
    // First comparator on `wire` at position >= next_index.
    const auto& list = per_wire_[wire];
    const auto it = std::lower_bound(list.begin(), list.end(),
                                     static_cast<std::uint32_t>(next_index));
    if (it == list.end()) break;  // reached an output port
    const std::uint32_t ci = *it;
    const sortnet::Comparator& c = net_.comparator(ci);
    const int side = (c.lo == wire) ? 0 : 1;
    ++traversed;
    const bool won = compete(ctx, ci, side);
    wire = won ? c.lo : c.hi;
    next_index = ci + 1;
  }
  return Routed{wire + 1, traversed};
}

std::uint64_t RenamingNetwork::rename(Ctx& ctx, std::uint64_t initial_id) {
  return rename_counted(ctx, initial_id).name;
}

}  // namespace renamelib::renaming
