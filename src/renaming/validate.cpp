#include "renaming/validate.h"

#include <algorithm>
#include <sstream>

namespace renamelib::renaming {

ValidationResult check_unique(const std::vector<std::uint64_t>& names) {
  std::vector<std::uint64_t> sorted = names;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (sorted[i] == 0) {
      return {false, "name 0 assigned (names are 1-based)"};
    }
    if (i > 0 && sorted[i] == sorted[i - 1]) {
      std::ostringstream os;
      os << "duplicate name " << sorted[i];
      return {false, os.str()};
    }
  }
  return {};
}

ValidationResult check_tight(const std::vector<std::uint64_t>& names,
                             std::uint64_t bound) {
  ValidationResult unique = check_unique(names);
  if (!unique.ok) return unique;
  for (std::uint64_t name : names) {
    if (name > bound) {
      std::ostringstream os;
      os << "name " << name << " exceeds tight bound " << bound;
      return {false, os.str()};
    }
  }
  return {};
}

}  // namespace renamelib::renaming
