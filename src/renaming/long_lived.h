// Long-lived adaptive renaming — the paper's first "future work" direction
// (Sec. 9: "apply our techniques to ... long-lived renaming [24]").
//
// In the long-lived problem a process repeatedly *acquires* a name and
// *releases* it; the namespace must track the number of concurrent holders,
// not the all-time total. This extension follows the BitBatching idea turned
// inside out: a process probes uniformly random slots in geometrically
// growing prefixes [0, 2), [0, 4), [0, 8), ... of a slot vector, claiming
// the first FREE slot with a CAS. With at most k concurrent holders, once
// the prefix reaches size >= 2k every probe hits a free slot with
// probability >= 1/2, so acquisition costs O(log k) probes in expectation
// and names stay O(k) w.h.p. — adaptivity that survives arbitrarily many
// acquire/release cycles. Release is a single store.
//
// Uniqueness among concurrent holders is immediate from the CAS; there is no
// ABA hazard because only the unique holder of a slot may release it.
#pragma once

#include <cstdint>

#include "core/register.h"
#include "renaming/renaming.h"

namespace renamelib::renaming {

class LongLivedRenaming {
 public:
  /// `capacity` bounds the slot vector (and thus max concurrent holders).
  explicit LongLivedRenaming(std::uint64_t capacity);

  std::uint64_t capacity() const noexcept { return capacity_; }

  /// Acquires a name in 1..capacity; names of concurrent holders are
  /// distinct and O(max concurrent holders) w.h.p.
  std::uint64_t acquire(Ctx& ctx);

  /// Releases a name previously acquired by this process.
  void release(Ctx& ctx, std::uint64_t name);

  struct Outcome {
    std::uint64_t name = 0;
    std::uint64_t probes = 0;
  };
  Outcome acquire_instrumented(Ctx& ctx);

  /// Number of currently taken slots (quiescent diagnostic).
  std::uint64_t holders() const;

 private:
  std::uint64_t capacity_;
  RegisterArray<std::uint8_t> slots_;  ///< 0 = free, 1 = taken
};

}  // namespace renamelib::renaming
