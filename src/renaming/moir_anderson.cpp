#include "renaming/moir_anderson.h"

#include "core/assert.h"

namespace renamelib::renaming {

MoirAndersonRenaming::MoirAndersonRenaming(std::size_t max_processes)
    : side_(max_processes) {
  RENAMELIB_ENSURE(side_ >= 1, "need at least one process");
  // Triangle with rows of length side_, side_-1, ..., 1.
  grid_ = std::make_unique<splitter::Splitter[]>(side_ * (side_ + 1) / 2);
}

splitter::Splitter& MoirAndersonRenaming::at(std::size_t row, std::size_t col) {
  RENAMELIB_ENSURE(row + col < side_, "grid coordinates out of the triangle");
  // Row r starts after rows 0..r-1 of lengths side_, side_-1, ...
  const std::size_t offset = row * side_ - row * (row - 1) / 2;
  return grid_[offset + col];
}

std::uint64_t MoirAndersonRenaming::name_of(std::size_t row,
                                            std::size_t col) const {
  const std::uint64_t d = row + col;
  return d * (d + 1) / 2 + row + 1;  // position within the diagonal
}

MoirAndersonRenaming::Outcome MoirAndersonRenaming::rename_instrumented(
    Ctx& ctx, std::uint64_t initial_id) {
  RENAMELIB_ENSURE(initial_id != 0, "initial ids must be nonzero");
  LabelScope label{ctx, "moir_anderson/rename"};
  Outcome out;
  std::size_t row = 0;
  std::size_t col = 0;
  for (;;) {
    ++out.moves;
    switch (at(row, col).acquire(ctx, initial_id)) {
      case splitter::SplitterOutcome::kStop:
        out.name = name_of(row, col);
        return out;
      case splitter::SplitterOutcome::kRight:
        ++col;
        break;
      case splitter::SplitterOutcome::kDown:
        ++row;
        break;
    }
    // With at most side_ participants the walk stays inside the triangle
    // (at() ENSUREs it): each move is charged to a distinct other process.
  }
}

std::uint64_t MoirAndersonRenaming::rename(Ctx& ctx, std::uint64_t initial_id) {
  return rename_instrumented(ctx, initial_id).name;
}

}  // namespace renamelib::renaming
