#include "renaming/bit_batching.h"

#include <cmath>
#include <unordered_set>

#include "core/assert.h"

namespace renamelib::renaming {

namespace {
std::uint64_t ceil_log2(std::uint64_t n) {
  std::uint64_t lg = 0;
  while ((1ULL << lg) < n) ++lg;
  return lg;
}
}  // namespace

BitBatching::BitBatching(std::uint64_t n, SlotTasKind kind)
    : n_(n), kind_(kind) {
  RENAMELIB_ENSURE(n >= 2, "BitBatching needs n >= 2");
  const std::uint64_t logn = std::max<std::uint64_t>(ceil_log2(n), 1);
  // l = floor(log2(n / log n)); at least one batch.
  ell_ = 0;
  while ((1ULL << (ell_ + 1)) <= n / logn) ++ell_;
  ell_ = std::max<std::size_t>(ell_, 1);
  probes_per_batch_ = 3 * logn;

  if (kind_ == SlotTasKind::kRatRace) {
    ratrace_slots_.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      ratrace_slots_.push_back(std::make_unique<tas::RatRaceTas>());
    }
  } else {
    hardware_slots_ = std::make_unique<tas::HardwareTas[]>(n);
  }
}

std::uint64_t BitBatching::batch_begin(std::size_t i) const {
  RENAMELIB_ENSURE(i >= 1 && i <= ell_, "batch index out of range");
  return n_ - n_ / (1ULL << (i - 1));
}

std::uint64_t BitBatching::batch_end(std::size_t i) const {
  RENAMELIB_ENSURE(i >= 1 && i <= ell_, "batch index out of range");
  if (i == ell_) return n_;  // last batch absorbs the tail (length ~log n)
  return n_ - n_ / (1ULL << i);
}

bool BitBatching::probe(Ctx& ctx, std::uint64_t slot) {
  if (kind_ == SlotTasKind::kRatRace) {
    return ratrace_slots_[slot]->test_and_set(ctx);
  }
  return hardware_slots_[slot].test_and_set(ctx);
}

BitBatching::Outcome BitBatching::rename_instrumented(Ctx& ctx) {
  LabelScope label{ctx, "bitbatching/rename"};
  Outcome out;

  // The slot objects are one-shot per process, so a process never probes the
  // same slot twice: stage 1 samples *distinct* slots within each batch and
  // stage 2 skips slots already probed.
  std::unordered_set<std::uint64_t> probed;

  auto try_slot = [&](std::uint64_t slot) {
    probed.insert(slot);
    ++out.probes;
    if (probe(ctx, slot)) {
      out.name = slot + 1;
      return true;
    }
    return false;
  };

  // Stage 1: random probes per batch, exhaustive in the last batch.
  for (std::size_t i = 1; i <= ell_; ++i) {
    const std::uint64_t begin = batch_begin(i);
    const std::uint64_t end = batch_end(i);
    const std::uint64_t batch_size = end - begin;
    if (i < ell_ && batch_size > probes_per_batch_) {
      for (std::uint64_t t = 0; t < probes_per_batch_; ++t) {
        std::uint64_t slot;
        do {
          slot = begin + ctx.rng().below(batch_size);
        } while (probed.contains(slot));
        if (try_slot(slot)) return out;
      }
    } else {
      // Small (or last) batch: probe every slot once.
      for (std::uint64_t slot = begin; slot < end; ++slot) {
        if (try_slot(slot)) return out;
      }
    }
  }

  // Stage 2: left-to-right sweep; reached with probability <= 1/n^c.
  out.entered_stage2 = true;
  LabelScope sweep{ctx, "bitbatching/stage2"};
  for (std::uint64_t slot = 0; slot < n_; ++slot) {
    if (probed.contains(slot)) continue;  // already lost there in stage 1
    if (try_slot(slot)) return out;
  }
  RENAMELIB_ENSURE(false,
                   "all n slots taken: more than n processes participated");
}

std::uint64_t BitBatching::rename(Ctx& ctx, std::uint64_t /*initial_id*/) {
  return rename_instrumented(ctx).name;
}

}  // namespace renamelib::renaming
