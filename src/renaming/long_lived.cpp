#include "renaming/long_lived.h"

#include "core/assert.h"

namespace renamelib::renaming {

LongLivedRenaming::LongLivedRenaming(std::uint64_t capacity)
    : capacity_(capacity), slots_(capacity, 0) {
  RENAMELIB_ENSURE(capacity >= 2, "capacity must be >= 2");
}

LongLivedRenaming::Outcome LongLivedRenaming::acquire_instrumented(Ctx& ctx) {
  LabelScope label{ctx, "long_lived/acquire"};
  Outcome out;
  // Geometrically growing probe prefixes; within each prefix size, a few
  // random probes. Once the prefix dominates 2x the holder count, each probe
  // succeeds with probability >= 1/2.
  for (std::uint64_t prefix = 2;; prefix = std::min(prefix * 2, capacity_)) {
    const int tries = 3;
    for (int t = 0; t < tries; ++t) {
      const std::uint64_t slot = ctx.rng().below(prefix);
      ++out.probes;
      std::uint8_t expected = 0;
      if (slots_[slot].compare_exchange(ctx, expected, 1)) {
        out.name = slot + 1;
        return out;
      }
    }
    if (prefix == capacity_) {
      // Saturated randomized phase: deterministic sweep guarantees progress
      // whenever holders < capacity (the bounded-capacity contract).
      for (std::uint64_t slot = 0; slot < capacity_; ++slot) {
        ++out.probes;
        std::uint8_t expected = 0;
        if (slots_[slot].compare_exchange(ctx, expected, 1)) {
          out.name = slot + 1;
          return out;
        }
      }
      RENAMELIB_ENSURE(false, "long-lived capacity exhausted (holders == capacity)");
    }
  }
}

std::uint64_t LongLivedRenaming::acquire(Ctx& ctx) {
  return acquire_instrumented(ctx).name;
}

void LongLivedRenaming::release(Ctx& ctx, std::uint64_t name) {
  RENAMELIB_ENSURE(name >= 1 && name <= capacity_, "release of invalid name");
  LabelScope label{ctx, "long_lived/release"};
  RENAMELIB_ENSURE(slots_[name - 1].peek() == 1, "release of a free name");
  slots_[name - 1].store(ctx, 0);
}

std::uint64_t LongLivedRenaming::holders() const {
  std::uint64_t taken = 0;
  for (std::uint64_t i = 0; i < capacity_; ++i) taken += slots_[i].peek();
  return taken;
}

}  // namespace renamelib::renaming
