// Flat-combining funnel: publication slots + combiner election over any
// ranged value dispenser.
//
// The classic latency-for-throughput trade (Hendler/Incze/Shavit flat
// combining; Aspnes' combining trees) applied to renamelib's dispensers:
// instead of every operation crossing to the shared object, a thread
// *publishes* its request (want k values) into a cache-line-padded
// publication slot, one thread elects itself combiner via a CAS'd lock,
// sweeps the slots, mints the summed demand from the inner dispenser in a
// single ranged crossing, and distributes the resulting value runs back
// through the slots. Dispensers stay dense: every waiter receives distinct
// values from the combined range, because the inner mint is the only value
// source.
//
// Publication-slot state machine (one packed 64-bit word per slot —
// state | field | seq):
//
//             publish CAS                 sweep CAS (combiner, lock held)
//   EMPTY ------------------> PENDING ------------------------------> CLAIMED
//     ^                          |                                       |
//     |   withdraw CAS (waiter   |            answer regs written, then  |
//     +--------------------------+            decisive CAS               |
//     ^                                                                  v
//     +<------------------- consume store <--------------------- DELIVERED
//     ^                                                                  |
//     +<------- reclaim CAS (waiter timed out of the handoff) <----------+
//
// `seq` (48 bits, bumped once per publication) makes every decisive CAS
// tag-checked: a slow combiner's delivery to a publication the waiter
// already reclaimed fails cleanly instead of ABA-ing into a later request.
// The answer registers themselves need no tags because they are only ever
// written by the lock-holding combiner and only read after the decisive CAS
// of the *same* publication succeeded — the combiner lock orders all answer
// writes, the decisive CAS publishes them.
//
// Every wait is bounded, so the funnel degrades instead of blocking:
//   * a PENDING waiter that spins out withdraws and mints directly from the
//     inner (obstruction-free pass-through);
//   * a CLAIMED waiter that spins out of the handoff reclaims its slot and
//     mints directly — the values the combiner minted for it return to the
//     combiner's work list and are re-distributed or parked in the spill
//     pool, never silently lost;
//   * a combiner that crashes holding the lock (simulated backend) merely
//     degrades the funnel to pass-through: every later request times out of
//     PENDING and goes direct. Crash-orphaned values are bounded by the
//     in-flight work list: <= max(max_combine, the crashed combiner's own
//     published want) per crashed combiner.
//
// Escrow accounting (what the conformance/fuzz oracles check): every request
// for k values triggers at most one combiner-side mint of <= k and at most
// one direct mint of <= k on its behalf, so after requests totalling T
// values the inner has minted M <= 2T, every handed value came from the
// inner's first M values, and the undelivered difference lives in the spill
// pool (drain() recovers it at quiescence) except for pool-overflow drops,
// which stats() counts. At hardware-backend quiescence with zero drops,
// handed ∪ drained is exactly the inner's minted set — the dense-prefix
// validation bench_combining performs on both backends.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "api/counter.h"
#include "core/ctx.h"
#include "core/register.h"

namespace renamelib::combining {

/// Flat-combining front-end over a ranged mint hook.
class CombiningFunnel {
 public:
  struct Options {
    std::size_t slots = 16;         ///< publication slots (pid mod slots)
    int spin = 64;                  ///< bounded publication-wait loads
    /// Caps the *additional* demand a combiner claims from other slots per
    /// sweep. The combiner's own published want is always served in full
    /// (batched callers publish their whole next_range request), so one
    /// sweep mints at most max(max_combine, own want) values.
    std::uint64_t max_combine = 64;
  };

  /// Ranged mint: append `k` fresh values from the inner dispenser to `out`.
  using Mint =
      std::function<void(Ctx&, std::uint64_t, std::vector<api::ValueRange>&)>;
  /// Single-value mint (the allocation-free direct/fast path).
  using MintOne = std::function<std::uint64_t(Ctx&)>;

  /// Meta-level diagnostics (relaxed counters, zero protocol steps).
  struct Stats {
    std::uint64_t combines = 0;        ///< sweeps performed (lock sessions)
    std::uint64_t combined_requests = 0; ///< publications answered by a combiner
    std::uint64_t combined_values = 0;  ///< values handed through slot answers
    std::uint64_t direct_mints = 0;    ///< pass-through requests (busy slot,
                                       ///< withdraw, or reclaim)
    std::uint64_t withdraws = 0;       ///< PENDING timeouts
    std::uint64_t reclaims = 0;        ///< CLAIMED handoff timeouts
    std::uint64_t spilled_values = 0;  ///< values parked in the spill pool
    std::uint64_t pool_served_values = 0; ///< values re-served from the pool
    std::uint64_t dropped_values = 0;  ///< values orphaned (pool overflow)
  };

  CombiningFunnel(Options options, Mint mint, MintOne mint_one);

  /// Obtains between 1 and `k` values (k >= 1), appended to `out` as runs;
  /// returns how many were obtained. Partial answers are normal (a combiner
  /// hands at most kAnswerRuns runs per publication) — callers loop.
  std::uint64_t get(Ctx& ctx, std::uint64_t k,
                    std::vector<api::ValueRange>& out);

  /// Allocation-free single-value request (the ICounter::next fast path).
  std::uint64_t get_one(Ctx& ctx);

  /// Drains the spill pool into `out` (values minted for reclaimed waiters
  /// that no later combiner re-served). Quiescent-time accounting: benches
  /// call it after joining all threads to validate exact density. Returns
  /// the number of values drained.
  std::uint64_t drain(Ctx& ctx, std::vector<api::ValueRange>& out);

  Stats stats() const;

  std::size_t slots() const noexcept { return options_.slots; }
  std::uint64_t max_combine() const noexcept { return options_.max_combine; }

  /// Quiescent-time peek: true iff some process holds the combiner lock —
  /// at quiescence that means a combiner died mid-sweep and the funnel has
  /// degraded to pass-through. Meta-level (zero protocol steps).
  bool lock_held() const noexcept { return lock_.peek() != 0; }

  /// Answer runs a combiner can hand through one slot; a want spanning more
  /// runs than this is answered partially.
  static constexpr std::size_t kAnswerRuns = 6;

 private:
  // ---- packed request word: [63:62] state | [61:48] field | [47:0] seq ----
  enum : std::uint64_t { kEmpty = 0, kPending = 1, kClaimed = 2, kDelivered = 3 };
  static constexpr std::uint64_t kFieldMax = (1ULL << 14) - 1;
  static constexpr std::uint64_t kSeqMask = (1ULL << 48) - 1;

  static std::uint64_t pack(std::uint64_t state, std::uint64_t field,
                            std::uint64_t seq) noexcept {
    return (state << 62) | ((field & kFieldMax) << 48) | (seq & kSeqMask);
  }
  static std::uint64_t state_of(std::uint64_t w) noexcept { return w >> 62; }
  static std::uint64_t field_of(std::uint64_t w) noexcept {
    return (w >> 48) & kFieldMax;
  }
  static std::uint64_t seq_of(std::uint64_t w) noexcept { return w & kSeqMask; }

  /// One publication slot. The answer registers carry up to kAnswerRuns
  /// (base, stride, count) runs; they are protected by the combiner lock +
  /// decisive CAS, not by their own tags (see file comment).
  struct alignas(64) Slot {
    Register<std::uint64_t> word{0};
    Register<std::uint64_t> run_base[kAnswerRuns];
    Register<std::uint64_t> run_stride[kAnswerRuns];
    Register<std::uint64_t> run_count[kAnswerRuns];
  };

  /// Spill-pool entry: a parked value run. state 0 = free, 1 = busy
  /// (transfer in progress), 2 = full.
  struct alignas(64) PoolEntry {
    Register<std::uint64_t> state{0};
    Register<std::uint64_t> base{0};
    Register<std::uint64_t> stride{1};
    Register<std::uint64_t> count{0};
  };

  /// A claimed publication the combiner owes an answer to.
  struct Claim {
    std::size_t slot = 0;
    std::uint64_t want = 0;
    std::uint64_t seq = 0;
  };

  /// How one published request resolved.
  enum class WaitOutcome {
    kDelivered,  ///< answer in the slot's registers (`field` = run count)
    kWithdrawn,  ///< timed out of PENDING; slot returned to EMPTY
    kReclaimed,  ///< timed out of the CLAIMED handoff; slot returned to EMPTY
    kElected,    ///< caller holds the combiner lock; run combine()
  };

  /// Bounded watch of the published request at slot `s` (see file comment).
  /// On kDelivered, `field` carries the answer's run count.
  WaitOutcome await(Ctx& ctx, std::size_t s, std::uint64_t want,
                    std::uint64_t seq, std::uint64_t& field);

  /// Reads a delivered answer (`nruns` runs) out of slot `s` into `out` and
  /// returns the slot to EMPTY. Returns the values consumed.
  std::uint64_t consume(Ctx& ctx, std::size_t s, std::uint64_t seq,
                        std::uint64_t nruns, std::vector<api::ValueRange>& out);

  /// Runs one combine session (combiner lock held on entry, released on
  /// exit). Serves the caller's own claimed publication directly into `out`
  /// (no answer registers) and returns the values obtained for it.
  std::uint64_t combine(Ctx& ctx, std::size_t own_slot, std::uint64_t own_want,
                        std::uint64_t own_seq,
                        std::vector<api::ValueRange>& out);

  /// Peels up to `want` values off the back of `work` into `got` (at most
  /// `max_runs` runs); returns values peeled.
  static std::uint64_t peel(std::vector<api::ValueRange>& work,
                            std::uint64_t want, std::size_t max_runs,
                            std::vector<api::ValueRange>& got);

  /// Pulls up to `want` values out of the spill pool into `work`.
  std::uint64_t pool_pull(Ctx& ctx, std::uint64_t want,
                          std::vector<api::ValueRange>& work);
  /// Parks every run of `work` in the spill pool; overflow drops (counted).
  void pool_park(Ctx& ctx, std::vector<api::ValueRange>& work);

  /// Direct pass-through mint of up to `k` values.
  std::uint64_t direct(Ctx& ctx, std::uint64_t k,
                       std::vector<api::ValueRange>& out);

  /// True iff the caller grabbed the combiner lock.
  bool try_lock(Ctx& ctx, int pid);
  void unlock(Ctx& ctx);

  Options options_;
  Mint mint_;
  MintOne mint_one_;
  std::unique_ptr<Slot[]> slots_;
  std::size_t pool_size_;
  std::unique_ptr<PoolEntry[]> pool_;
  /// Advisory count of full pool entries: pool_pull checks it with one load
  /// and skips the whole pool scan when it reads 0 — the overwhelmingly
  /// common case, which would otherwise cost pool_size_ padded-line loads
  /// per combine session. Skew is harmless: an undercount (a process parked
  /// an entry but crashed before the increment) only delays recycling until
  /// drain(); an overcount only wastes one scan. Never protocol-decisive.
  Register<std::uint64_t> pool_hint_{0};
  Register<std::uint64_t> lock_{0};  ///< 0 = free, else holder pid + 1

  // Meta-level stats (diagnostics only; never protocol state).
  struct Counters {
    std::atomic<std::uint64_t> combines{0};
    std::atomic<std::uint64_t> combined_requests{0};
    std::atomic<std::uint64_t> combined_values{0};
    std::atomic<std::uint64_t> direct_mints{0};
    std::atomic<std::uint64_t> withdraws{0};
    std::atomic<std::uint64_t> reclaims{0};
    std::atomic<std::uint64_t> spilled_values{0};
    std::atomic<std::uint64_t> pool_served_values{0};
    std::atomic<std::uint64_t> dropped_values{0};
  };
  mutable Counters counters_;
};

}  // namespace renamelib::combining
