#include "combining/combining_funnel.h"

#include <algorithm>
#include <thread>

#include "core/assert.h"
#include "obs/emit.h"

namespace renamelib::combining {

namespace {

/// How much longer a CLAIMED waiter watches the handoff than a PENDING one
/// watches the sweep: once claimed, the combiner has already minted for us,
/// so patience is cheap and reclaiming wastes a minted value.
constexpr int kHandoffMultiplier = 8;

}  // namespace

CombiningFunnel::CombiningFunnel(Options options, Mint mint, MintOne mint_one)
    : options_(options), mint_(std::move(mint)), mint_one_(std::move(mint_one)) {
  RENAMELIB_ENSURE(options_.slots >= 1, "combining funnel needs slots >= 1");
  RENAMELIB_ENSURE(options_.spin >= 1, "combining funnel needs spin >= 1");
  RENAMELIB_ENSURE(options_.max_combine >= 1,
                   "combining funnel needs max_combine >= 1");
  RENAMELIB_ENSURE(options_.max_combine <= kFieldMax,
                   "max_combine exceeds the request word's want field");
  slots_ = std::make_unique<Slot[]>(options_.slots);
  // The spill pool holds ranges minted for reclaimed waiters. Reclaims are
  // rare (bounded handoff races), so a few entries per slot keeps drops —
  // the only orphaning path — out of healthy executions.
  pool_size_ = std::max<std::size_t>(options_.slots * 4, 64);
  pool_ = std::make_unique<PoolEntry[]>(pool_size_);
}

bool CombiningFunnel::try_lock(Ctx& ctx, int pid) {
  std::uint64_t expected = 0;
  return lock_.compare_exchange(ctx, expected,
                                static_cast<std::uint64_t>(pid) + 1);
}

void CombiningFunnel::unlock(Ctx& ctx) { lock_.store(ctx, 0); }

std::uint64_t CombiningFunnel::peel(std::vector<api::ValueRange>& work,
                                    std::uint64_t want, std::size_t max_runs,
                                    std::vector<api::ValueRange>& got) {
  std::uint64_t peeled = 0;
  std::size_t runs = 0;
  while (peeled < want && runs < max_runs && !work.empty()) {
    api::ValueRange& r = work.back();
    const std::uint64_t take = std::min(r.count, want - peeled);
    got.push_back(api::ValueRange{r.base, r.stride, take});
    r.base += take * r.stride;
    r.count -= take;
    if (r.count == 0) work.pop_back();
    peeled += take;
    ++runs;
  }
  return peeled;
}

std::uint64_t CombiningFunnel::pool_pull(Ctx& ctx, std::uint64_t want,
                                         std::vector<api::ValueRange>& work) {
  LabelScope scope(ctx, "combine/refill");
  // One load answers the common case: nothing parked, nothing to scan.
  if (pool_hint_.load(ctx) == 0) return 0;
  std::uint64_t have = 0;
  for (std::size_t i = 0; i < pool_size_ && have < want; ++i) {
    std::uint64_t state = pool_[i].state.load(ctx);
    if (state != 2) continue;
    if (!pool_[i].state.compare_exchange(ctx, state, 1)) continue;
    api::ValueRange r;
    r.base = pool_[i].base.load(ctx);
    r.stride = pool_[i].stride.load(ctx);
    r.count = pool_[i].count.load(ctx);
    pool_[i].state.store(ctx, 0);
    pool_hint_.fetch_add(ctx, ~std::uint64_t{0});
    work.push_back(r);
    have += r.count;
    counters_.pool_served_values.fetch_add(r.count, std::memory_order_relaxed);
  }
  return have;
}

void CombiningFunnel::pool_park(Ctx& ctx, std::vector<api::ValueRange>& work) {
  LabelScope scope(ctx, "combine/spill");
  std::size_t cursor = 0;
  for (const api::ValueRange& r : work) {
    if (r.count == 0) continue;
    bool parked = false;
    for (; cursor < pool_size_ && !parked; ++cursor) {
      std::uint64_t state = pool_[cursor].state.load(ctx);
      if (state != 0) continue;
      if (!pool_[cursor].state.compare_exchange(ctx, state, 1)) continue;
      pool_[cursor].base.store(ctx, r.base);
      pool_[cursor].stride.store(ctx, r.stride);
      pool_[cursor].count.store(ctx, r.count);
      pool_[cursor].state.store(ctx, 2);
      pool_hint_.fetch_add(ctx, 1);
      parked = true;
      counters_.spilled_values.fetch_add(r.count, std::memory_order_relaxed);
      obs::emit(obs::Site::kCombineSpill, r.count);
    }
    if (!parked) {
      // Pool exhausted: these values are orphaned (the escrow slack the
      // oracles allow for). Counted, never silent.
      counters_.dropped_values.fetch_add(r.count, std::memory_order_relaxed);
      obs::emit(obs::Site::kCombineDrop, r.count);
    }
  }
  work.clear();
}

std::uint64_t CombiningFunnel::drain(Ctx& ctx,
                                     std::vector<api::ValueRange>& out) {
  LabelScope scope(ctx, "combine/drain");
  std::uint64_t drained = 0;
  for (std::size_t i = 0; i < pool_size_; ++i) {
    std::uint64_t state = pool_[i].state.load(ctx);
    if (state != 2) continue;
    if (!pool_[i].state.compare_exchange(ctx, state, 1)) continue;
    api::ValueRange r;
    r.base = pool_[i].base.load(ctx);
    r.stride = pool_[i].stride.load(ctx);
    r.count = pool_[i].count.load(ctx);
    pool_[i].state.store(ctx, 0);
    pool_hint_.fetch_add(ctx, ~std::uint64_t{0});
    out.push_back(r);
    drained += r.count;
  }
  return drained;
}

std::uint64_t CombiningFunnel::direct(Ctx& ctx, std::uint64_t k,
                                      std::vector<api::ValueRange>& out) {
  LabelScope scope(ctx, "combine/direct");
  counters_.direct_mints.fetch_add(1, std::memory_order_relaxed);
  if (k == 1) {
    out.push_back(api::ValueRange{mint_one_(ctx), 1, 1});
    return 1;
  }
  mint_(ctx, k, out);
  return k;
}

std::uint64_t CombiningFunnel::combine(Ctx& ctx, std::size_t own_slot,
                                       std::uint64_t own_want,
                                       std::uint64_t own_seq,
                                       std::vector<api::ValueRange>& out) {
  counters_.combines.fetch_add(1, std::memory_order_relaxed);
  LabelScope scope(ctx, "combine/sweep");
  Slot& own = slots_[own_slot];
  std::uint64_t expected = pack(kPending, own_want, own_seq);
  if (!own.word.compare_exchange(ctx, expected,
                                 pack(kClaimed, own_want, own_seq))) {
    // A previous combiner answered this publication before releasing the
    // lock; the answer is sitting in our slot. Nothing to sweep on its
    // behalf — consume and go.
    RENAMELIB_ENSURE(
        state_of(expected) == kDelivered && seq_of(expected) == own_seq,
        "combiner lock acquired but own publication neither pending nor "
        "delivered");
    const std::uint64_t got =
        consume(ctx, own_slot, own_seq, field_of(expected), out);
    unlock(ctx);
    return got;
  }

  // Sweep: claim every pending publication the budget admits. Own want is
  // always served, so the budget floor is own_want.
  const std::uint64_t budget = std::max(options_.max_combine, own_want);
  std::uint64_t total_want = own_want;
  std::vector<Claim> claims;
  for (std::size_t j = 1; j < options_.slots; ++j) {
    const std::size_t s = (own_slot + j) % options_.slots;
    std::uint64_t w = slots_[s].word.load(ctx);
    if (state_of(w) != kPending) continue;
    const std::uint64_t want = field_of(w);
    if (total_want + want > budget) continue;
    if (slots_[s].word.compare_exchange(ctx, w,
                                        pack(kClaimed, want, seq_of(w)))) {
      claims.push_back(Claim{s, want, seq_of(w)});
      total_want += want;
      obs::emit(obs::Site::kCombineSweep,
                (static_cast<std::uint64_t>(s) << 20) | want);
    }
  }

  // One crossing for the whole batch: recycled spill ranges first, a single
  // ranged mint for the shortfall.
  std::vector<api::ValueRange> work;
  const std::uint64_t have = pool_pull(ctx, total_want, work);
  if (have < total_want) mint_(ctx, total_want - have, work);

  // Serve the claimed waiters first (the elimination-leader discipline:
  // partner before self), then take the own share; a lost decisive CAS
  // returns the peeled values to the work list.
  std::vector<api::ValueRange> share;
  for (const Claim& c : claims) {
    share.clear();
    const std::uint64_t peeled = peel(work, c.want, kAnswerRuns, share);
    Slot& slot = slots_[c.slot];
    LabelScope deliver(ctx, "combine/deliver");
    for (std::size_t r = 0; r < share.size(); ++r) {
      slot.run_base[r].store(ctx, share[r].base);
      slot.run_stride[r].store(ctx, share[r].stride);
      slot.run_count[r].store(ctx, share[r].count);
    }
    std::uint64_t exp = pack(kClaimed, c.want, c.seq);
    if (slot.word.compare_exchange(
            ctx, exp, pack(kDelivered, share.size(), c.seq))) {
      counters_.combined_requests.fetch_add(1, std::memory_order_relaxed);
      counters_.combined_values.fetch_add(peeled, std::memory_order_relaxed);
      obs::emit(obs::Site::kCombineDeliver, c.slot);
    } else {
      // The waiter reclaimed its slot mid-handoff; its values stay in hand
      // and are re-distributed or parked, never lost.
      for (const api::ValueRange& r : share) work.push_back(r);
    }
  }

  // Own share goes straight to the caller — no answer registers needed.
  const std::uint64_t got = peel(work, own_want, ~std::size_t{0}, out);
  own.word.store(ctx, pack(kEmpty, 0, own_seq));
  counters_.combined_requests.fetch_add(1, std::memory_order_relaxed);
  counters_.combined_values.fetch_add(got, std::memory_order_relaxed);
  pool_park(ctx, work);
  unlock(ctx);
  return got;
}

CombiningFunnel::WaitOutcome CombiningFunnel::await(Ctx& ctx, std::size_t s,
                                                    std::uint64_t want,
                                                    std::uint64_t seq,
                                                    std::uint64_t& field) {
  LabelScope scope(ctx, "combine/wait");
  Slot& slot = slots_[s];
  const bool hardware = ctx.gate() == nullptr;
  bool claimed = false;
  // Phase 1: watch the publication; periodically stand for election so a
  // solo process (or the first arrival) combines for itself.
  for (int i = 0; i < options_.spin; ++i) {
    if (!claimed && (i & 7) == 0 && try_lock(ctx, ctx.pid())) {
      return WaitOutcome::kElected;
    }
    const std::uint64_t w = slot.word.load(ctx);
    if (seq_of(w) == seq) {
      if (state_of(w) == kDelivered) {
        field = field_of(w);
        return WaitOutcome::kDelivered;
      }
      if (state_of(w) == kClaimed) {
        claimed = true;
        break;
      }
    }
    // Oversubscribed hardware: hand the core to the combiner instead of
    // burning the timeslice (meta-level, zero steps).
    if (hardware) std::this_thread::yield();
  }
  if (!claimed) {
    std::uint64_t expected = pack(kPending, want, seq);
    if (slot.word.compare_exchange(ctx, expected, pack(kEmpty, 0, seq))) {
      counters_.withdraws.fetch_add(1, std::memory_order_relaxed);
      obs::emit(obs::Site::kCombineWithdraw, s);
      return WaitOutcome::kWithdrawn;
    }
    if (state_of(expected) == kDelivered && seq_of(expected) == seq) {
      field = field_of(expected);
      return WaitOutcome::kDelivered;
    }
  }
  // Phase 2: claimed — the combiner already minted for us, so watch the
  // handoff longer before reclaiming (reclaimed values are re-minted work).
  for (int i = 0; i < options_.spin * kHandoffMultiplier; ++i) {
    const std::uint64_t w = slot.word.load(ctx);
    if (state_of(w) == kDelivered && seq_of(w) == seq) {
      field = field_of(w);
      return WaitOutcome::kDelivered;
    }
    if (hardware) std::this_thread::yield();
  }
  std::uint64_t expected = pack(kClaimed, want, seq);
  if (slot.word.compare_exchange(ctx, expected, pack(kEmpty, 0, seq))) {
    counters_.reclaims.fetch_add(1, std::memory_order_relaxed);
    obs::emit(obs::Site::kCombineReclaim, s);
    return WaitOutcome::kReclaimed;
  }
  RENAMELIB_ENSURE(
      state_of(expected) == kDelivered && seq_of(expected) == seq,
      "claimed publication neither delivered nor reclaimable");
  field = field_of(expected);
  return WaitOutcome::kDelivered;
}

std::uint64_t CombiningFunnel::consume(Ctx& ctx, std::size_t s,
                                       std::uint64_t seq, std::uint64_t nruns,
                                       std::vector<api::ValueRange>& out) {
  Slot& slot = slots_[s];
  std::uint64_t got = 0;
  for (std::uint64_t r = 0; r < nruns; ++r) {
    api::ValueRange run;
    run.base = slot.run_base[r].load(ctx);
    run.stride = slot.run_stride[r].load(ctx);
    run.count = slot.run_count[r].load(ctx);
    out.push_back(run);
    got += run.count;
  }
  slot.word.store(ctx, pack(kEmpty, 0, seq));
  return got;
}

std::uint64_t CombiningFunnel::get(Ctx& ctx, std::uint64_t k,
                                   std::vector<api::ValueRange>& out) {
  if (k == 0) return 0;
  // The published want is the full request (field-width permitting), not
  // capped at max_combine: a batched caller's own demand is always served
  // in one sweep (combine()'s budget floors at own_want), so one
  // publication round covers one whole next_range batch. max_combine only
  // bounds how much *additional* demand a combiner claims from others.
  const std::uint64_t want = std::min(k, kFieldMax);
  const std::size_t s =
      static_cast<std::size_t>(ctx.pid()) % options_.slots;
  std::uint64_t w;
  {
    LabelScope scope(ctx, "combine/publish");
    w = slots_[s].word.load(ctx);
    if (state_of(w) != kEmpty ||
        !slots_[s].word.compare_exchange(
            ctx, w, pack(kPending, want, (seq_of(w) + 1) & kSeqMask))) {
      // Slot busy (shared by another pid, or poisoned by a crashed waiter's
      // unconsumed answer): pass through.
      return direct(ctx, k, out);
    }
  }
  const std::uint64_t seq = (seq_of(w) + 1) & kSeqMask;
  std::uint64_t field = 0;
  switch (await(ctx, s, want, seq, field)) {
    case WaitOutcome::kElected: {
      const std::uint64_t got = combine(ctx, s, want, seq, out);
      return got > 0 ? got : direct(ctx, k, out);
    }
    case WaitOutcome::kDelivered: {
      const std::uint64_t got = consume(ctx, s, seq, field, out);
      return got > 0 ? got : direct(ctx, k, out);
    }
    case WaitOutcome::kWithdrawn:
    case WaitOutcome::kReclaimed:
      return direct(ctx, k, out);
  }
  return direct(ctx, k, out);  // unreachable
}

std::uint64_t CombiningFunnel::get_one(Ctx& ctx) {
  const std::size_t s =
      static_cast<std::size_t>(ctx.pid()) % options_.slots;
  std::uint64_t w;
  {
    LabelScope scope(ctx, "combine/publish");
    w = slots_[s].word.load(ctx);
    if (state_of(w) != kEmpty ||
        !slots_[s].word.compare_exchange(
            ctx, w, pack(kPending, 1, (seq_of(w) + 1) & kSeqMask))) {
      counters_.direct_mints.fetch_add(1, std::memory_order_relaxed);
      LabelScope direct_scope(ctx, "combine/direct");
      return mint_one_(ctx);
    }
  }
  const std::uint64_t seq = (seq_of(w) + 1) & kSeqMask;
  std::uint64_t field = 0;
  switch (await(ctx, s, 1, seq, field)) {
    case WaitOutcome::kElected: {
      // The elected path allocates; it amortizes over the whole sweep.
      std::vector<api::ValueRange> got;
      if (combine(ctx, s, 1, seq, got) > 0) return got.front().base;
      break;
    }
    case WaitOutcome::kDelivered: {
      if (field > 0) {
        const std::uint64_t value = slots_[s].run_base[0].load(ctx);
        slots_[s].word.store(ctx, pack(kEmpty, 0, seq));
        return value;
      }
      slots_[s].word.store(ctx, pack(kEmpty, 0, seq));
      break;
    }
    case WaitOutcome::kWithdrawn:
    case WaitOutcome::kReclaimed:
      break;
  }
  counters_.direct_mints.fetch_add(1, std::memory_order_relaxed);
  LabelScope direct_scope(ctx, "combine/direct");
  return mint_one_(ctx);
}

CombiningFunnel::Stats CombiningFunnel::stats() const {
  Stats s;
  s.combines = counters_.combines.load(std::memory_order_relaxed);
  s.combined_requests =
      counters_.combined_requests.load(std::memory_order_relaxed);
  s.combined_values = counters_.combined_values.load(std::memory_order_relaxed);
  s.direct_mints = counters_.direct_mints.load(std::memory_order_relaxed);
  s.withdraws = counters_.withdraws.load(std::memory_order_relaxed);
  s.reclaims = counters_.reclaims.load(std::memory_order_relaxed);
  s.spilled_values = counters_.spilled_values.load(std::memory_order_relaxed);
  s.pool_served_values =
      counters_.pool_served_values.load(std::memory_order_relaxed);
  s.dropped_values = counters_.dropped_values.load(std::memory_order_relaxed);
  return s;
}

}  // namespace renamelib::combining
