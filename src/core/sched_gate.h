// The handshake between a simulated process and the adversarial scheduler.
//
// In simulated mode every shared-memory operation is bracketed by
// begin_step()/end_step() on the process's SchedGate. The scheduler grants
// exactly one outstanding step at a time, so the grant order is a total order
// on shared-memory operations — i.e. the linearization the adversary chose.
#pragma once

#include <condition_variable>
#include <mutex>

#include "core/step.h"

namespace renamelib {

/// Thrown inside a simulated process when the adversary crashes it. The
/// executor catches it at the top of the process body; algorithms just need
/// to be exception-safe (RAII), which they are.
struct ProcessCrashed {};

/// One gate per simulated process. Process-side calls come from the process
/// thread; scheduler-side calls come from the executor thread.
class SchedGate {
 public:
  enum class State : int {
    kRunning,    ///< executing local code (not visible to scheduling)
    kAtGate,     ///< blocked, requesting a shared step (info() is valid)
    kExecuting,  ///< granted; performing the shared operation
    kDone,       ///< process body returned
    kCrashed,    ///< adversary killed it (or it observed the kill)
  };

  SchedGate() = default;
  SchedGate(const SchedGate&) = delete;
  SchedGate& operator=(const SchedGate&) = delete;

  // --- process side ---------------------------------------------------

  /// Announces `info` and blocks until the scheduler grants the step.
  /// Throws ProcessCrashed if the adversary killed this process.
  void begin_step(const StepInfo& info);

  /// Marks the granted step complete and wakes the scheduler.
  void end_step();

  /// Called once when the process body returns (normally or by crash).
  void finish(bool crashed);

  // --- scheduler side --------------------------------------------------

  /// Blocks until the process is at the gate, done, or crashed.
  /// Returns the state reached.
  State wait_ready();

  /// Grants the pending step and blocks until the process completes it and
  /// either reaches the next gate, finishes, or crashes.
  void grant_and_wait();

  /// Marks the process crashed. If it is blocked at the gate it wakes and
  /// throws ProcessCrashed; if it is running local code it dies at its next
  /// begin_step(). Returns immediately.
  void kill();

  /// Snapshot of the current state (scheduler side).
  State state() const;

  /// The pending step description; only meaningful in State::kAtGate.
  StepInfo info() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  State state_ = State::kRunning;
  bool kill_requested_ = false;
  bool granted_ = false;
  StepInfo info_{};
};

}  // namespace renamelib
