// Multi-writer multi-reader atomic registers, the paper's base primitive.
//
// Register<T> wraps std::atomic<T> but routes every access through a Ctx so
// that (a) step complexity is measured exactly and (b) in simulated mode the
// adversary chooses the linearization order. Because the simulator grants one
// step at a time, the underlying std::atomic operation executes while the
// process holds the grant, making the grant order the linearization order.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <type_traits>

#include "core/assert.h"
#include "core/ctx.h"
#include "obs/emit.h"

namespace renamelib {

template <typename T>
class Register {
  static_assert(std::is_trivially_copyable_v<T>,
                "registers hold trivially copyable values");

 public:
  Register() : value_{} {}
  explicit Register(T initial) : value_{initial} {}
  Register(const Register&) = delete;
  Register& operator=(const Register&) = delete;

  T load(Ctx& ctx) const {
    ctx.before_shared_op(OpKind::kLoad, this);
    T v = value_.load(std::memory_order_seq_cst);
    ctx.after_shared_op();
    return v;
  }

  void store(Ctx& ctx, T v) {
    ctx.before_shared_op(OpKind::kStore, this);
    value_.store(v, std::memory_order_seq_cst);
    ctx.after_shared_op();
  }

  /// Single-shot strong CAS; returns true iff the swap happened. `expected`
  /// is updated with the observed value on failure, like std::atomic.
  bool compare_exchange(Ctx& ctx, T& expected, T desired) {
    ctx.before_shared_op(OpKind::kCas, this);
    bool ok = value_.compare_exchange_strong(expected, desired,
                                             std::memory_order_seq_cst);
    ctx.after_shared_op();
    if (!ok) {
      // A lost CAS race, keyed by the protocol phase it happened in — the
      // contention signal for both the fuzzer's coverage map and the event
      // bus's cas_fail counter (free when observation is disabled).
      obs::emit(obs::Site::kCasFail, fuzz::Coverage::hash_str(ctx.label()));
    }
    return ok;
  }

  T exchange(Ctx& ctx, T v) {
    ctx.before_shared_op(OpKind::kExchange, this);
    T old = value_.exchange(v, std::memory_order_seq_cst);
    ctx.after_shared_op();
    return old;
  }

  template <typename U = T>
  std::enable_if_t<std::is_integral_v<U>, T> fetch_add(Ctx& ctx, T delta) {
    ctx.before_shared_op(OpKind::kFetchAdd, this);
    T old = value_.fetch_add(delta, std::memory_order_seq_cst);
    ctx.after_shared_op();
    return old;
  }

  /// Initialization-time access, NOT a process step (e.g. building objects
  /// before an execution starts). Must not race with ongoing executions.
  T peek() const { return value_.load(std::memory_order_seq_cst); }
  void poke(T v) { value_.store(v, std::memory_order_seq_cst); }

 private:
  std::atomic<T> value_;
};

/// Fixed-size array of registers (registers are not copyable/movable, so
/// vector<Register<T>> does not work).
template <typename T>
class RegisterArray {
 public:
  explicit RegisterArray(std::size_t n, T initial = T{})
      : size_(n), regs_(std::make_unique<Register<T>[]>(n)) {
    for (std::size_t i = 0; i < n; ++i) regs_[i].poke(initial);
  }

  std::size_t size() const noexcept { return size_; }

  Register<T>& operator[](std::size_t i) {
    RENAMELIB_ENSURE(i < size_, "register index out of range");
    return regs_[i];
  }
  const Register<T>& operator[](std::size_t i) const {
    RENAMELIB_ENSURE(i < size_, "register index out of range");
    return regs_[i];
  }

 private:
  std::size_t size_;
  std::unique_ptr<Register<T>[]> regs_;
};

}  // namespace renamelib
