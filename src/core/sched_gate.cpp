#include "core/sched_gate.h"

#include "core/assert.h"

namespace renamelib {

void SchedGate::begin_step(const StepInfo& info) {
  std::unique_lock lock{mu_};
  if (kill_requested_) {
    state_ = State::kCrashed;
    cv_.notify_all();
    throw ProcessCrashed{};
  }
  RENAMELIB_ENSURE(state_ == State::kRunning, "begin_step from non-running state");
  info_ = info;
  state_ = State::kAtGate;
  granted_ = false;
  cv_.notify_all();
  cv_.wait(lock, [&] { return granted_ || kill_requested_; });
  if (kill_requested_ && !granted_) {
    state_ = State::kCrashed;
    cv_.notify_all();
    throw ProcessCrashed{};
  }
  state_ = State::kExecuting;
}

void SchedGate::end_step() {
  std::unique_lock lock{mu_};
  RENAMELIB_ENSURE(state_ == State::kExecuting, "end_step without grant");
  state_ = State::kRunning;
  cv_.notify_all();
}

void SchedGate::finish(bool crashed) {
  std::unique_lock lock{mu_};
  state_ = crashed ? State::kCrashed : State::kDone;
  cv_.notify_all();
}

SchedGate::State SchedGate::wait_ready() {
  std::unique_lock lock{mu_};
  // A kill-requested process still at its gate is *dying*, not pending: it
  // will wake and crash without scheduler input. Reporting it as kAtGate
  // would hand the adversary a stale view whose content depends on OS thread
  // timing (the process transitions to kCrashed only when its thread wakes),
  // breaking determinism under load.
  cv_.wait(lock, [&] {
    return (state_ == State::kAtGate && !granted_ && !kill_requested_) ||
           state_ == State::kDone || state_ == State::kCrashed;
  });
  return state_;
}

void SchedGate::grant_and_wait() {
  std::unique_lock lock{mu_};
  RENAMELIB_ENSURE(state_ == State::kAtGate, "grant for process not at gate");
  granted_ = true;
  cv_.notify_all();
  // Wait until the process performed the step and came back to a stable
  // observation point: next gate, done, or crashed. `granted_` is reset only
  // when the process arrives at its *next* gate, which distinguishes that
  // gate from the one we just granted.
  cv_.wait(lock, [&] {
    return (state_ == State::kAtGate && !granted_) || state_ == State::kDone ||
           state_ == State::kCrashed;
  });
}

void SchedGate::kill() {
  std::unique_lock lock{mu_};
  kill_requested_ = true;
  cv_.notify_all();
}

SchedGate::State SchedGate::state() const {
  std::unique_lock lock{mu_};
  return state_;
}

StepInfo SchedGate::info() const {
  std::unique_lock lock{mu_};
  return info_;
}

}  // namespace renamelib
