#include "core/rng.h"

namespace renamelib {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  // Lemire-style rejection: draw until the value falls below the largest
  // multiple of `bound`, which keeps the result exactly uniform.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

double Rng::uniform01() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::derive(std::uint64_t seed, std::uint64_t salt) noexcept {
  std::uint64_t s = seed ^ (0x9e3779b97f4a7c15ULL * (salt + 1));
  (void)splitmix64(s);
  return splitmix64(s);
}

}  // namespace renamelib
