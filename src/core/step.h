// Description of a single shared-memory step, as observed by the adversary.
#pragma once

#include <cstdint>

namespace renamelib {

/// Kind of shared-memory primitive about to be executed.
enum class OpKind : std::uint8_t {
  kLoad,
  kStore,
  kCas,
  kExchange,
  kFetchAdd,
  kFetchOr,
  kTestAndSet,  // hardware unit-cost TAS (std::atomic_flag)
};

const char* to_string(OpKind kind) noexcept;

/// Metadata published by a process right before it performs a shared step.
///
/// A strong adaptive adversary is allowed to inspect everything about a
/// process — including the coin flips it has already drawn — before deciding
/// whom to schedule. `label` is an algorithm-supplied annotation (e.g.
/// "ratrace/tournament") that lets adversary strategies target protocol
/// phases without parsing internals.
struct StepInfo {
  OpKind kind = OpKind::kLoad;
  const void* object = nullptr;  ///< identity of the register being accessed
  const char* label = "";        ///< innermost algorithm annotation
  std::uint64_t seq = 0;         ///< per-process shared-step sequence number
};

}  // namespace renamelib
