// Lightweight invariant checking used across renamelib.
//
// RENAMELIB_ENSURE is active in all build types: protocol invariants (name
// uniqueness, gate handshake states, ...) are cheap relative to the shared
// memory operations they guard, and silent corruption in a concurrency
// library is far worse than the cost of a predictable branch.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace renamelib::detail {

[[noreturn]] inline void ensure_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "renamelib: invariant violated: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg ? msg : "");
  std::abort();
}

}  // namespace renamelib::detail

#define RENAMELIB_ENSURE(cond, msg)                                          \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::renamelib::detail::ensure_fail(#cond, __FILE__, __LINE__, (msg));    \
    }                                                                        \
  } while (false)
