// Per-process execution context.
//
// Every shared-memory operation in renamelib goes through a Ctx, which
//   (a) counts steps exactly as the paper does (shared-memory operations;
//       all coin flips between two shared operations count as one step),
//   (b) supplies the process's private randomness, and
//   (c) in simulated mode, defers to the adversarial scheduler via SchedGate.
//
// In hardware mode (gate == nullptr) the overhead is one branch and two
// counter increments per operation, so the same algorithm code serves both
// real-thread benchmarks and deterministic adversarial simulation.
#pragma once

#include <cstdint>

#include "core/assert.h"
#include "core/rng.h"
#include "core/sched_gate.h"
#include "core/step.h"

namespace renamelib {

/// Execution context handed to every operation of every shared object.
class Ctx {
 public:
  /// Hardware-mode context: steps are counted but never blocked.
  Ctx(int pid, std::uint64_t seed) : pid_(pid), rng_(seed) {}

  /// Simulated-mode context: each shared step must be granted through `gate`.
  Ctx(int pid, std::uint64_t seed, SchedGate* gate)
      : pid_(pid), rng_(seed), gate_(gate) {}

  Ctx(const Ctx&) = delete;
  Ctx& operator=(const Ctx&) = delete;

  int pid() const noexcept { return pid_; }

  /// Process-private randomness. Draws between two shared operations are
  /// charged to the step counter as (at most) one step, per the paper's cost
  /// model: we count them via coin_batches_.
  Rng& rng() noexcept {
    if (!coin_drawn_since_step_) {
      coin_drawn_since_step_ = true;
      ++coin_batches_;
    }
    ++coin_flips_;
    return rng_;
  }

  /// Number of shared-memory operations performed so far.
  std::uint64_t shared_steps() const noexcept { return shared_steps_; }

  /// Steps in the paper's cost model: shared operations plus one step per
  /// batch of coin flips between consecutive shared operations.
  std::uint64_t steps() const noexcept { return shared_steps_ + coin_batches_; }

  /// Raw number of random draws (for diagnostics).
  std::uint64_t coin_flips() const noexcept { return coin_flips_; }

  /// Resets counters; used by harnesses measuring a single operation.
  void reset_counters() noexcept {
    shared_steps_ = 0;
    coin_flips_ = 0;
    coin_batches_ = 0;
    coin_drawn_since_step_ = false;
  }

  /// Called by Register/HardwareTas before each shared operation.
  /// In simulated mode this blocks until the adversary grants the step.
  void before_shared_op(OpKind kind, const void* object) {
    if (gate_ != nullptr) {
      // May throw ProcessCrashed: a step killed at the gate was never
      // performed and is not counted.
      gate_->begin_step(StepInfo{kind, object, label_, shared_steps_ + 1});
    }
  }

  /// Called by Register/HardwareTas right after the shared operation; only
  /// completed operations count toward step complexity.
  void after_shared_op() {
    ++shared_steps_;
    coin_drawn_since_step_ = false;
    if (gate_ != nullptr) gate_->end_step();
  }

  /// Mints a process-locally unique 64-bit identity (pid in the high bits,
  /// a local sequence number in the low bits). Counters use this to issue a
  /// fresh initial name per operation — the paper's "unbounded initial
  /// namespace". Purely local: not a shared-memory step.
  ///
  /// The sequence number occupies the low 32 bits; letting it wrap (or spill
  /// into the pid bits) would silently break the "unique initial name"
  /// invariant every protocol relies on, so exhaustion aborts instead.
  std::uint64_t mint_token() noexcept {
    ++token_seq_;
    RENAMELIB_ENSURE((token_seq_ >> 32) == 0,
                     "mint_token: 2^32 identities exhausted for this process");
    return ((static_cast<std::uint64_t>(pid_) + 1) << 32) | token_seq_;
  }

  /// Innermost algorithm annotation; see LabelScope.
  const char* label() const noexcept { return label_; }

  SchedGate* gate() const noexcept { return gate_; }

 private:
  friend class LabelScope;

  int pid_;
  Rng rng_;
  SchedGate* gate_ = nullptr;
  const char* label_ = "";
  std::uint64_t shared_steps_ = 0;
  std::uint64_t coin_flips_ = 0;
  std::uint64_t coin_batches_ = 0;
  std::uint64_t token_seq_ = 0;
  bool coin_drawn_since_step_ = false;
};

/// RAII annotation of the protocol phase a process is in; the adversary can
/// read it via StepInfo::label and target specific phases (e.g. delay
/// processes about to win a test-and-set).
class LabelScope {
 public:
  LabelScope(Ctx& ctx, const char* label) noexcept
      : ctx_(ctx), saved_(ctx.label_) {
    ctx_.label_ = label;
  }
  ~LabelScope() { ctx_.label_ = saved_; }
  LabelScope(const LabelScope&) = delete;
  LabelScope& operator=(const LabelScope&) = delete;

 private:
  Ctx& ctx_;
  const char* saved_;
};

}  // namespace renamelib
