#include "core/ctx.h"

#include "core/step.h"

namespace renamelib {

const char* to_string(OpKind kind) noexcept {
  switch (kind) {
    case OpKind::kLoad:
      return "load";
    case OpKind::kStore:
      return "store";
    case OpKind::kCas:
      return "cas";
    case OpKind::kExchange:
      return "exchange";
    case OpKind::kFetchAdd:
      return "fetch_add";
    case OpKind::kFetchOr:
      return "fetch_or";
    case OpKind::kTestAndSet:
      return "test_and_set";
  }
  return "?";
}

}  // namespace renamelib
