// Deterministic per-process pseudo-randomness.
//
// The paper's algorithms are randomized against a strong adaptive adversary;
// reproducible experiments therefore require that each simulated process owns
// a private, seedable generator whose draws are part of the recorded
// execution. We use xoshiro256** (public domain, Blackman & Vigna) seeded via
// splitmix64, which is the conventional pairing.
#pragma once

#include <array>
#include <cstdint>

namespace renamelib {

/// splitmix64 step; used to expand seeds and derive child seeds.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// A small, fast, deterministic PRNG (xoshiro256**).
///
/// Not cryptographic. One instance per process/thread; instances are cheap
/// to copy, which snapshots the stream.
class Rng {
 public:
  /// Seeds the generator; two generators with the same seed produce the same
  /// stream.
  explicit Rng(std::uint64_t seed) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t next() noexcept;

  /// Uniform value in [0, bound). Unbiased (rejection sampling).
  /// Precondition: bound > 0.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Fair coin flip.
  bool coin() noexcept { return (next() >> 63) != 0; }

  /// Uniform double in [0, 1).
  double uniform01() noexcept;

  /// Derives an independent child seed; deterministic in (parent seed, salt).
  static std::uint64_t derive(std::uint64_t seed, std::uint64_t salt) noexcept;

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace renamelib
