// Descriptive statistics shared by tests and benchmark harnesses.
#pragma once

#include <cstddef>
#include <vector>

namespace renamelib::stats {

/// Summary of a sample (computed once, cheap to copy).
struct Summary {
  std::size_t count = 0;
  double mean = 0;
  double stddev = 0;
  double min = 0;
  double max = 0;
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
};

/// Computes a Summary; the input is copied and sorted internally.
Summary summarize(std::vector<double> sample);

/// Exact percentile (nearest-rank) of a sample; input copied and sorted.
double percentile(std::vector<double> sample, double p);

}  // namespace renamelib::stats
