#include "stats/histogram.h"

#include <algorithm>
#include <sstream>

#include "core/assert.h"

namespace renamelib::stats {

Histogram::Histogram(double bucket_width, std::size_t bucket_count)
    : width_(bucket_width), buckets_(bucket_count, 0) {
  RENAMELIB_ENSURE(bucket_width > 0 && bucket_count > 0, "bad histogram shape");
}

void Histogram::add(double value) {
  ++total_;
  if (value < 0) value = 0;
  const std::size_t idx = static_cast<std::size_t>(value / width_);
  if (idx >= buckets_.size()) {
    ++overflow_;
  } else {
    ++buckets_[idx];
  }
}

void Histogram::add_all(const std::vector<double>& values) {
  for (double v : values) add(v);
}

std::uint64_t Histogram::bucket(std::size_t i) const {
  RENAMELIB_ENSURE(i < buckets_.size(), "bucket index out of range");
  return buckets_[i];
}

std::string Histogram::render(std::size_t max_bar) const {
  std::uint64_t peak = overflow_;
  for (auto b : buckets_) peak = std::max(peak, b);
  if (peak == 0) peak = 1;
  std::ostringstream os;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const double lo = static_cast<double>(i) * width_;
    const std::size_t bar =
        static_cast<std::size_t>(buckets_[i] * max_bar / peak);
    os << '[' << lo << ", " << lo + width_ << ")\t" << buckets_[i] << '\t'
       << std::string(bar, '#') << '\n';
  }
  if (overflow_ > 0) {
    const std::size_t bar =
        static_cast<std::size_t>(overflow_ * max_bar / peak);
    os << "[overflow)\t" << overflow_ << '\t' << std::string(bar, '#') << '\n';
  }
  return os.str();
}

}  // namespace renamelib::stats
