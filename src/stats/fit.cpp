#include "stats/fit.h"

#include <cmath>

#include "core/assert.h"

namespace renamelib::stats {

LinearFit fit_linear(const std::vector<double>& x, const std::vector<double>& y) {
  RENAMELIB_ENSURE(x.size() == y.size() && x.size() >= 2, "fit needs >= 2 points");
  const double n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  LinearFit f;
  const double denom = n * sxx - sx * sx;
  f.slope = denom != 0 ? (n * sxy - sx * sy) / denom : 0;
  f.intercept = (sy - f.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double e = y[i] - (f.intercept + f.slope * x[i]);
    ss_res += e * e;
  }
  f.r2 = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return f;
}

GrowthFit fit_growth(const std::vector<double>& x, const std::vector<double>& y) {
  RENAMELIB_ENSURE(x.size() == y.size() && x.size() >= 2, "fit needs >= 2 points");
  struct Candidate {
    const char* name;
    double exponent;  ///< exponent of log2(x); < 0 means model y = c*x
  };
  static constexpr Candidate kCandidates[] = {
      {"log^0.5", 0.5}, {"log", 1.0},   {"log^1.5", 1.5}, {"log^2", 2.0},
      {"log^2.5", 2.5}, {"log^3", 3.0}, {"linear", -1.0},
  };

  GrowthFit best;
  best.r2 = -1e300;
  for (const auto& cand : kCandidates) {
    // Model value m(x); fit y = c*m by least squares through the origin, then
    // score with R².
    std::vector<double> m(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double lx = std::log2(std::max(x[i], 2.0));
      m[i] = cand.exponent < 0 ? x[i] : std::pow(lx, cand.exponent);
    }
    double smm = 0, smy = 0, sy = 0, syy = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      smm += m[i] * m[i];
      smy += m[i] * y[i];
      sy += y[i];
      syy += y[i] * y[i];
    }
    const double c = smm > 0 ? smy / smm : 0;
    const double n = static_cast<double>(x.size());
    const double ss_tot = syy - sy * sy / n;
    double ss_res = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double e = y[i] - c * m[i];
      ss_res += e * e;
    }
    const double r2 = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
    if (r2 > best.r2) {
      best.model = cand.name;
      best.constant = c;
      best.r2 = r2;
    }
  }
  return best;
}

double polylog_ratio(const std::vector<double>& x, const std::vector<double>& y,
                     double p) {
  RENAMELIB_ENSURE(x.size() == y.size() && !x.empty(), "empty sample");
  double sum = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double lx = std::log2(std::max(x[i], 2.0));
    sum += y[i] / std::pow(lx, p);
  }
  return sum / static_cast<double>(x.size());
}

}  // namespace renamelib::stats
