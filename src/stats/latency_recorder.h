// Concurrent tail-latency recording: per-thread, log-bucketed (HDR-style)
// histograms with O(1) record and no overflow loss.
//
// The paper's claims are statements about tails ("w.h.p.", O(log k) steps),
// and the fixed-width stats::Histogram destroys exactly the tail we care
// about: everything past the last bucket collapses into one overflow count.
// LatencyRecorder instead buckets by value magnitude — kSubBuckets buckets
// per power of two — so the whole uint64 range is representable at a bounded
// relative resolution (<= 1/kSubBuckets ~ 3%), a recording is a fixed-size
// array regardless of sample count, and merging two recordings (across
// threads or across runs) is bucket-wise addition.
//
// Concurrency model: one histogram slot per thread, cache-line aligned, each
// written only by its owner thread (relaxed atomics make the concurrent
// snapshot() read race-free). record() is wait-free: a bit-scan, one
// fetch_add, and a handful of owner-only updates. A snapshot taken after the
// writing threads joined is exact; one taken mid-run is a monotone lower
// bound per bucket.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "stats/summary.h"

namespace renamelib::stats {

/// Log-bucket geometry shared by LatencyRecorder and LatencySnapshot.
struct LatencyBuckets {
  /// log2 of the sub-bucket count per power of two. 5 => 32 sub-buckets,
  /// <= 3.2% relative bucket width everywhere.
  static constexpr int kSubBits = 5;
  static constexpr std::uint64_t kSubBuckets = 1ull << kSubBits;
  /// Dense bucket count covering every uint64 value (no overflow bucket).
  static constexpr std::size_t kCount =
      static_cast<std::size_t>(64 - kSubBits + 1) * kSubBuckets;

  /// Bucket index of `v`: values below 2*kSubBuckets map exactly; above,
  /// the top kSubBits+1 significant bits select the bucket. O(1).
  static constexpr std::size_t index_of(std::uint64_t v) {
    if (v < 2 * kSubBuckets) return static_cast<std::size_t>(v);
    const int shift = std::bit_width(v) - 1 - kSubBits;
    return (static_cast<std::size_t>(shift) << kSubBits) +
           static_cast<std::size_t>(v >> shift);
  }

  /// Inclusive lower edge of bucket `i`.
  static constexpr std::uint64_t lower(std::size_t i) {
    if (i < 2 * kSubBuckets) return i;
    const int shift = static_cast<int>(i >> kSubBits) - 1;
    const std::uint64_t mantissa = (i & (kSubBuckets - 1)) | kSubBuckets;
    return mantissa << shift;
  }

  /// Exclusive upper edge of bucket `i` (0 means "past uint64 max").
  static constexpr std::uint64_t upper(std::size_t i) {
    if (i < 2 * kSubBuckets) return i + 1;
    const int shift = static_cast<int>(i >> kSubBits) - 1;
    return lower(i) + (1ull << shift);
  }
};

/// A merged, immutable view of recorded values: dense log-bucket counts plus
/// exact count/sum/min/max moments. Mergeable across threads and across
/// runs; percentile queries resolve to the bucket holding the nearest-rank
/// sample (error bounded by one log-bucket, <= 1/kSubBuckets relative).
class LatencySnapshot {
 public:
  LatencySnapshot() : buckets_(LatencyBuckets::kCount, 0) {}

  /// Builds a snapshot from raw samples (values < 0 clamp to 0) — the
  /// bridge for sample vectors that never went through a recorder, e.g.
  /// simulated-backend step counts.
  static LatencySnapshot of(const std::vector<double>& samples);

  /// Adds one value (exact moments + its bucket).
  void add(std::uint64_t value);
  /// Bucket-wise merge of another recording (threads or runs).
  void merge(const LatencySnapshot& o);

  std::uint64_t count() const { return count_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  /// Nearest-rank percentile, p in [0, 1]: the inclusive lower edge of the
  /// bucket containing the rank-ceil(p*count) sample, clamped to min().
  /// Within one log-bucket of the exact sorted-sample percentile by
  /// construction, and always inside [min(), max()].
  std::uint64_t percentile(double p) const;

  /// The stats::Summary shape benches print (p50/p90/p99 from buckets,
  /// mean/min/max exact, stddev from exact moments) — drop-in for
  /// stats::summarize over a raw sample vector.
  Summary to_summary() const;

  /// Count in bucket `i` (see LatencyBuckets for edges).
  std::uint64_t bucket(std::size_t i) const { return buckets_[i]; }
  /// Non-empty buckets as (lower, upper, count) rows, ascending — the
  /// sparse form reports serialize.
  struct Bar {
    std::uint64_t lower = 0;
    std::uint64_t upper = 0;  ///< exclusive; 0 means past uint64 max
    std::uint64_t count = 0;
  };
  std::vector<Bar> nonzero_buckets() const;

  /// Rebuilds a snapshot from serialized moments + sparse buckets (the
  /// BenchReport round-trip). Throws std::invalid_argument if a bucket
  /// lower edge is not a valid bucket boundary or counts disagree.
  static LatencySnapshot from_parts(std::uint64_t count, double sum,
                                    double sum_sq, std::uint64_t min,
                                    std::uint64_t max,
                                    const std::vector<Bar>& bars);

  /// Exact moment accessors (serialized by reports).
  double sum() const { return sum_; }
  double sum_sq() const { return sum_sq_; }

 private:
  friend class LatencyRecorder;

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double sum_sq_ = 0;
  std::uint64_t min_ = ~0ull;
  std::uint64_t max_ = 0;
};

/// The concurrent recorder: one cache-line-aligned log-bucket histogram per
/// thread, written only by that thread. record() is wait-free O(1);
/// snapshot() merges all threads.
class LatencyRecorder {
 public:
  /// One slot per thread; `threads` must cover every thread index passed to
  /// record().
  explicit LatencyRecorder(int threads);

  int threads() const { return threads_; }

  /// Records `value` for `thread` (0-based). Only `thread` itself may call
  /// this with its index — the single-writer discipline is what makes the
  /// slot updates contention-free.
  void record(int thread, std::uint64_t value) noexcept;

  /// Merged view across all threads. Exact once writers have joined.
  LatencySnapshot snapshot() const;

 private:
  struct alignas(64) Slot {
    std::array<std::atomic<std::uint64_t>, LatencyBuckets::kCount> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> min{~0ull};
    std::atomic<std::uint64_t> max{0};
    std::atomic<double> sum{0};
    std::atomic<double> sum_sq{0};
  };

  int threads_;
  std::unique_ptr<Slot[]> slots_;
};

}  // namespace renamelib::stats
