#include "stats/summary.h"

#include <algorithm>
#include <cmath>

#include "core/assert.h"

namespace renamelib::stats {

namespace {
double nearest_rank(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const double clamped = std::clamp(p, 0.0, 1.0);
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(clamped * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}
}  // namespace

Summary summarize(std::vector<double> sample) {
  Summary s;
  s.count = sample.size();
  if (sample.empty()) return s;
  std::sort(sample.begin(), sample.end());
  s.min = sample.front();
  s.max = sample.back();
  double sum = 0;
  for (double v : sample) sum += v;
  s.mean = sum / static_cast<double>(sample.size());
  double sq = 0;
  for (double v : sample) sq += (v - s.mean) * (v - s.mean);
  s.stddev = sample.size() > 1
                 ? std::sqrt(sq / static_cast<double>(sample.size() - 1))
                 : 0.0;
  s.p50 = nearest_rank(sample, 0.50);
  s.p90 = nearest_rank(sample, 0.90);
  s.p99 = nearest_rank(sample, 0.99);
  return s;
}

double percentile(std::vector<double> sample, double p) {
  std::sort(sample.begin(), sample.end());
  return nearest_rank(sample, p);
}

}  // namespace renamelib::stats
