// Fixed-width table / CSV emission shared by the bench binaries, so every
// experiment prints rows in the same, easily diffable format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace renamelib::stats {

/// Builds and prints a column-aligned text table (and optionally CSV).
///
///   Table t({"k", "mean steps", "p99"});
///   t.add_row({"8", "41.2", "63"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` decimals.
  static std::string num(double v, int precision = 2);

  void print(std::ostream& os) const;
  std::string to_csv() const;

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace renamelib::stats
