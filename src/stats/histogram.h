// Simple fixed-bucket histograms for step distributions; benches use them to
// show tails (the paper's "w.h.p." claims are statements about tails).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace renamelib::stats {

class Histogram {
 public:
  /// Buckets [0,w), [w,2w), ...; values beyond the last bucket go to an
  /// overflow bucket.
  Histogram(double bucket_width, std::size_t bucket_count);

  void add(double value);
  void add_all(const std::vector<double>& values);

  std::size_t count() const noexcept { return total_; }
  std::uint64_t bucket(std::size_t i) const;
  std::uint64_t overflow() const noexcept { return overflow_; }

  /// Renders an ASCII bar chart.
  std::string render(std::size_t max_bar = 40) const;

 private:
  double width_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace renamelib::stats
