// Growth-shape estimation for complexity curves.
//
// The paper's evaluation is a set of asymptotic claims (O(log k), O(log^2 n),
// Ω(c log k), ...). The benches verify *shapes*: we fit measured cost y(x)
// against candidate models and report which exponent of log x explains the
// data best, plus the multiplicative constant.
#pragma once

#include <string>
#include <vector>

namespace renamelib::stats {

/// Least-squares fit of y = a + b*x; returns {a, b, r2}.
struct LinearFit {
  double intercept = 0;
  double slope = 0;
  double r2 = 0;
};
LinearFit fit_linear(const std::vector<double>& x, const std::vector<double>& y);

/// Fits y ≈ c * (log2 x)^p for p in {0.5, 1, 1.5, 2, 2.5, 3} plus y ≈ c*x
/// (linear) and returns the best model by R² on log-log axes.
struct GrowthFit {
  std::string model;   ///< e.g. "log^2", "log", "linear"
  double constant = 0; ///< fitted multiplicative constant c
  double r2 = 0;
};
GrowthFit fit_growth(const std::vector<double>& x, const std::vector<double>& y);

/// Mean of y_i / (log2 x_i)^p — the "constant" of a polylog model; useful to
/// confirm that a ratio is flat (bounded) across a sweep.
double polylog_ratio(const std::vector<double>& x, const std::vector<double>& y,
                     double p);

}  // namespace renamelib::stats
