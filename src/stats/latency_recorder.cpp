#include "stats/latency_recorder.h"

#include <cmath>
#include <stdexcept>

#include "core/assert.h"

namespace renamelib::stats {

LatencySnapshot LatencySnapshot::of(const std::vector<double>& samples) {
  LatencySnapshot out;
  for (const double s : samples) {
    out.add(s <= 0 ? 0 : static_cast<std::uint64_t>(std::llround(s)));
  }
  return out;
}

void LatencySnapshot::add(std::uint64_t value) {
  buckets_[LatencyBuckets::index_of(value)] += 1;
  count_ += 1;
  const double v = static_cast<double>(value);
  sum_ += v;
  sum_sq_ += v * v;
  if (value < min_) min_ = value;
  if (value > max_) max_ = value;
}

void LatencySnapshot::merge(const LatencySnapshot& o) {
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += o.buckets_[i];
  count_ += o.count_;
  sum_ += o.sum_;
  sum_sq_ += o.sum_sq_;
  if (o.min_ < min_) min_ = o.min_;
  if (o.max_ > max_) max_ = o.max_;
}

std::uint64_t LatencySnapshot::percentile(double p) const {
  if (count_ == 0) return 0;
  if (p < 0) p = 0;
  if (p > 1) p = 1;
  // Nearest rank: the ceil(p*count)-th smallest sample (1-based), at least 1.
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(p * static_cast<double>(count_)));
  if (rank < 1) rank = 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen < rank) continue;
    // The bucket's lower edge can undershoot the recorded minimum (which
    // lives somewhere inside the lowest non-empty bucket); clamping keeps
    // min <= percentile <= max, an invariant report consumers check.
    const std::uint64_t lo = LatencyBuckets::lower(i);
    return lo < min_ ? min_ : lo;
  }
  return max_;
}

Summary LatencySnapshot::to_summary() const {
  Summary s;
  s.count = static_cast<std::size_t>(count_);
  if (count_ == 0) return s;
  s.mean = mean();
  s.min = static_cast<double>(min());
  s.max = static_cast<double>(max_);
  if (count_ > 1) {
    const double n = static_cast<double>(count_);
    const double var = (sum_sq_ - n * s.mean * s.mean) / (n - 1);
    s.stddev = var > 0 ? std::sqrt(var) : 0.0;
  }
  s.p50 = static_cast<double>(percentile(0.50));
  s.p90 = static_cast<double>(percentile(0.90));
  s.p99 = static_cast<double>(percentile(0.99));
  return s;
}

std::vector<LatencySnapshot::Bar> LatencySnapshot::nonzero_buckets() const {
  std::vector<Bar> out;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    out.push_back(Bar{LatencyBuckets::lower(i), LatencyBuckets::upper(i),
                      buckets_[i]});
  }
  return out;
}

LatencySnapshot LatencySnapshot::from_parts(std::uint64_t count, double sum,
                                            double sum_sq, std::uint64_t min,
                                            std::uint64_t max,
                                            const std::vector<Bar>& bars) {
  LatencySnapshot out;
  std::uint64_t total = 0;
  for (const Bar& b : bars) {
    const std::size_t i = LatencyBuckets::index_of(b.lower);
    if (LatencyBuckets::lower(i) != b.lower) {
      throw std::invalid_argument(
          "latency bucket lower edge " + std::to_string(b.lower) +
          " is not a bucket boundary");
    }
    out.buckets_[i] += b.count;
    total += b.count;
  }
  if (total != count) {
    throw std::invalid_argument("latency bucket counts sum to " +
                                std::to_string(total) + ", expected " +
                                std::to_string(count));
  }
  if (count > 0) {
    // min/max must lie inside the lowest/highest non-empty bucket — a
    // tampered min would otherwise silently inflate every percentile
    // (percentile() clamps to min), and the Python validator would reject
    // what this parser accepted.
    std::size_t lo = 0;
    std::size_t hi = 0;
    for (std::size_t i = 0; i < out.buckets_.size(); ++i) {
      if (out.buckets_[i] == 0) continue;
      if (out.buckets_[lo] == 0) lo = i;
      hi = i;
    }
    if (LatencyBuckets::index_of(min) != lo ||
        LatencyBuckets::index_of(max) != hi) {
      throw std::invalid_argument(
          "latency min/max (" + std::to_string(min) + ", " +
          std::to_string(max) + ") do not lie in the extreme non-empty "
          "buckets");
    }
  }
  out.count_ = count;
  out.sum_ = sum;
  out.sum_sq_ = sum_sq;
  out.min_ = count == 0 ? ~0ull : min;
  out.max_ = max;
  return out;
}

LatencyRecorder::LatencyRecorder(int threads) : threads_(threads) {
  // Validate before allocating: a negative count cast to size_t would ask
  // new[] for ~2^64 slots and throw bad_alloc instead of this diagnostic.
  RENAMELIB_ENSURE(threads > 0, "latency recorder needs at least one thread");
  slots_.reset(new Slot[static_cast<std::size_t>(threads)]);
}

void LatencyRecorder::record(int thread, std::uint64_t value) noexcept {
  Slot& slot = slots_[static_cast<std::size_t>(thread)];
  // Single-writer slot: plain load/store pairs are safe, atomics only make
  // the concurrent snapshot() reader race-free.
  slot.buckets[LatencyBuckets::index_of(value)].fetch_add(
      1, std::memory_order_relaxed);
  slot.count.fetch_add(1, std::memory_order_relaxed);
  const double v = static_cast<double>(value);
  slot.sum.store(slot.sum.load(std::memory_order_relaxed) + v,
                 std::memory_order_relaxed);
  slot.sum_sq.store(slot.sum_sq.load(std::memory_order_relaxed) + v * v,
                    std::memory_order_relaxed);
  if (value < slot.min.load(std::memory_order_relaxed)) {
    slot.min.store(value, std::memory_order_relaxed);
  }
  if (value > slot.max.load(std::memory_order_relaxed)) {
    slot.max.store(value, std::memory_order_relaxed);
  }
}

LatencySnapshot LatencyRecorder::snapshot() const {
  LatencySnapshot out;
  for (int t = 0; t < threads_; ++t) {
    const Slot& slot = slots_[static_cast<std::size_t>(t)];
    // The total is derived from the bucket loads (not slot.count) so a
    // mid-run snapshot is internally consistent: percentile ranks always
    // match the bucket mass actually seen.
    for (std::size_t i = 0; i < LatencyBuckets::kCount; ++i) {
      const std::uint64_t n = slot.buckets[i].load(std::memory_order_relaxed);
      out.buckets_[i] += n;
      out.count_ += n;
    }
    out.sum_ += slot.sum.load(std::memory_order_relaxed);
    out.sum_sq_ += slot.sum_sq.load(std::memory_order_relaxed);
    const std::uint64_t mn = slot.min.load(std::memory_order_relaxed);
    const std::uint64_t mx = slot.max.load(std::memory_order_relaxed);
    if (mn < out.min_) out.min_ = mn;
    if (mx > out.max_) out.max_ = mx;
  }
  return out;
}

}  // namespace renamelib::stats
