#include "wakeup/wakeup.h"

#include <cmath>

namespace renamelib::wakeup {

int WakeupFromRenaming::wake(Ctx& ctx, std::uint64_t initial_id) {
  LabelScope label{ctx, "wakeup/wake"};
  const std::uint64_t name = renaming_.rename(ctx, initial_id);
  return name == k_ ? 1 : 0;
}

double step_lower_bound(double termination_probability, std::uint64_t k) {
  if (k < 2) return 0;
  return termination_probability * std::log2(static_cast<double>(k));
}

}  // namespace renamelib::wakeup
