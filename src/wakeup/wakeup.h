// The wakeup problem and its reduction from adaptive strong renaming (Sec. 7).
//
// Wakeup (Jayanti [16]): every process returns 0 or 1; if all terminate, at
// least one returns 1; a process may return 1 only after every process has
// taken a step. Theorem 4 gives an Omega(c log n) shared-access lower bound,
// which Theorem 5 transfers to adaptive strong renaming: any algorithm
// terminating with probability c costs Omega(c log k) steps — making the
// paper's O(log k) algorithm optimal.
//
// This module implements the reduction used in the proof — solve wakeup by
// renaming and returning 1 iff the acquired name equals k — so benches can
// measure the reduction's cost against the analytic bound.
#pragma once

#include <cstdint>

#include "renaming/adaptive_strong.h"

namespace renamelib::wakeup {

/// Wakeup solved via adaptive strong renaming, for a known process count k.
class WakeupFromRenaming {
 public:
  explicit WakeupFromRenaming(std::uint64_t k) : k_(k) {}

  /// Returns 1 iff this process obtained name k — which, by namespace
  /// tightness, certifies that all k processes have taken steps.
  int wake(Ctx& ctx, std::uint64_t initial_id);

  std::uint64_t k() const noexcept { return k_; }

 private:
  std::uint64_t k_;
  renaming::AdaptiveStrongRenaming renaming_;
};

/// The analytic lower bound of Theorem 5: c * log2(k) expected steps for an
/// algorithm terminating with probability c.
double step_lower_bound(double termination_probability, std::uint64_t k);

}  // namespace renamelib::wakeup
