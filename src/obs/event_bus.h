/// \file
/// \brief The event bus: process-wide per-site monotone counters, sharded
/// per thread so contended protocols can be observed without perturbing the
/// contention being measured.
///
/// The bus follows the same discipline as stats::LatencyRecorder: one
/// cache-line-padded shard per thread (assigned through a thread_local slot
/// index), each cell written with relaxed single-writer increments, and a
/// mergeable immutable snapshot. A snapshot taken after the writing threads
/// joined is exact; one taken mid-run is a per-cell monotone lower bound —
/// both properties inherited directly from the counters being monotone.
///
/// Counters never reset during a run; consumers measure *deltas* between two
/// snapshots (EventSnapshot::operator-), which is how api::Workload attaches
/// a per-run event section to Run without racing concurrent bus writers.
/// reset() exists for test isolation only and must not race an ongoing
/// instrumented execution.
///
/// Enablement is a Gate bit (obs/sites.h): when off, obs::emit skips the bus
/// entirely and the fast paths pay one relaxed mask load + branch in total.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/sites.h"

namespace renamelib::obs {

/// An immutable, mergeable view of per-site event counts. Algebraically a
/// vector of monotone counters: merge is element-wise addition, delta is
/// element-wise (saturating) subtraction — the same mergeability contract
/// that makes stats::LatencySnapshot gossip-able across threads and runs.
class EventSnapshot {
 public:
  EventSnapshot() { counts_.fill(0); }

  /// Count recorded for `site` (0 for sites never hit).
  std::uint64_t count(Site site) const noexcept {
    const auto i = static_cast<std::size_t>(site);
    return i < kSiteCount ? counts_[i] : 0;
  }

  /// Sets the count of one site (snapshot assembly and report parsing).
  void set(Site site, std::uint64_t n) noexcept {
    const auto i = static_cast<std::size_t>(site);
    if (i < kSiteCount) counts_[i] = n;
  }

  /// Element-wise addition (merging runs or processes).
  void merge(const EventSnapshot& o) noexcept {
    for (std::size_t i = 0; i < kSiteCount; ++i) counts_[i] += o.counts_[i];
  }

  /// Element-wise delta `*this - earlier`, saturating at 0 per cell so a
  /// reset between the two snapshots cannot produce a wrapped count.
  EventSnapshot operator-(const EventSnapshot& earlier) const noexcept {
    EventSnapshot d;
    for (std::size_t i = 0; i < kSiteCount; ++i) {
      d.counts_[i] =
          counts_[i] >= earlier.counts_[i] ? counts_[i] - earlier.counts_[i] : 0;
    }
    return d;
  }

  /// Sum over every site.
  std::uint64_t total() const noexcept {
    std::uint64_t t = 0;
    for (const std::uint64_t c : counts_) t += c;
    return t;
  }

  /// True iff every site's count is zero.
  bool empty() const noexcept { return total() == 0; }

  /// The nonzero sites as (site, count), ascending by site id — the sparse
  /// form reports serialize and CLI tables print.
  std::vector<std::pair<Site, std::uint64_t>> nonzero() const;

  /// Equality (tests): exact per-site comparison.
  bool operator==(const EventSnapshot& o) const noexcept {
    return counts_ == o.counts_;
  }

 private:
  std::array<std::uint64_t, kSiteCount> counts_;
};

/// The process-wide bus. count() is wait-free: a thread_local shard lookup
/// plus one relaxed increment on a cell owned by (at most a few) threads.
class EventBus {
 public:
  /// Shard count. Threads map onto shards round-robin via a thread_local
  /// index, so up to kShards concurrent threads write disjoint cache lines;
  /// beyond that shards are shared and the relaxed fetch_add stays correct,
  /// merely contended.
  static constexpr std::size_t kShards = 64;

  /// The process-wide instance.
  static EventBus& instance();

  /// Turns bus recording on or off (Gate::kBus; off is the default).
  static void set_enabled(bool on) { Gate::set(Gate::kBus, on); }
  /// True iff obs::emit feeds the bus.
  static bool enabled() { return Gate::enabled(Gate::kBus); }

  /// Records one event at `site`. Safe from any thread; relaxed,
  /// single-writer per shard cell in the common (<= kShards threads) case.
  void count(Site site) noexcept {
    const auto i = static_cast<std::size_t>(site);
    if (i >= kSiteCount) return;
    shards_[shard_index()].cells[i].fetch_add(1, std::memory_order_relaxed);
  }

  /// Merged view across all shards. Exact once writers have quiesced;
  /// a mid-run snapshot is a per-site monotone lower bound.
  EventSnapshot snapshot() const;

  /// Zeroes every cell. Test isolation only — must not race an ongoing
  /// instrumented execution (deltas, not resets, are the run-scoped API).
  void reset();

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kSiteCount> cells;
  };

  EventBus();

  /// This thread's shard, assigned round-robin on first use.
  static std::size_t shard_index() noexcept;

  std::unique_ptr<Shard[]> shards_;
};

}  // namespace renamelib::obs
