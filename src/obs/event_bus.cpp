#include "obs/event_bus.h"

namespace renamelib::obs {

std::atomic<std::uint32_t> Gate::mask_{0};

std::vector<std::pair<Site, std::uint64_t>> EventSnapshot::nonzero() const {
  std::vector<std::pair<Site, std::uint64_t>> out;
  for (std::size_t i = 0; i < kSiteCount; ++i) {
    if (counts_[i] != 0) out.emplace_back(static_cast<Site>(i), counts_[i]);
  }
  return out;
}

EventBus::EventBus() : shards_(std::make_unique<Shard[]>(kShards)) {
  for (std::size_t s = 0; s < kShards; ++s) {
    for (auto& cell : shards_[s].cells) {
      cell.store(0, std::memory_order_relaxed);
    }
  }
}

EventBus& EventBus::instance() {
  static EventBus bus;
  return bus;
}

std::size_t EventBus::shard_index() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t mine =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return mine;
}

EventSnapshot EventBus::snapshot() const {
  EventSnapshot snap;
  for (std::size_t i = 0; i < kSiteCount; ++i) {
    std::uint64_t total = 0;
    for (std::size_t s = 0; s < kShards; ++s) {
      total += shards_[s].cells[i].load(std::memory_order_relaxed);
    }
    snap.set(static_cast<Site>(i), total);
  }
  return snap;
}

void EventBus::reset() {
  for (std::size_t s = 0; s < kShards; ++s) {
    for (auto& cell : shards_[s].cells) {
      cell.store(0, std::memory_order_relaxed);
    }
  }
}

}  // namespace renamelib::obs
