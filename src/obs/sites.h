/// \file
/// \brief The runtime's instrumentation-site catalog: one enum naming every
/// interesting decision point, shared by every observation consumer.
///
/// A Site identifies *where* in the runtime an event happened — a lost CAS
/// race, an elimination pairing, a lease seize, a balancer traversal. The
/// enum is the single source of truth for three consumers layered on top of
/// obs::emit (obs/emit.h): the event bus's per-site monotone counters
/// (obs/event_bus.h), the flight recorder's post-mortem ring
/// (obs/flight_recorder.h), and the fuzzer's branch-style coverage map
/// (fuzz/coverage.h, whose CovSite is an alias of this enum).
///
/// Numbering is part of the contract: coverage features hash the numeric
/// site id, so renumbering existing sites would invalidate stored coverage
/// fingerprints. Append new sites, never reorder.
///
/// site_name() strings are equally load-bearing: they key the optional
/// `events` section of bench-report JSON (api/report.h), which
/// tools/bench_compare.py diffs by name across commits. Rename a site and
/// its trajectory forks.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace renamelib::obs {

/// Instrumentation site identifiers. The (site, feature) pair keys coverage
/// features; the site alone keys event-bus counters and report rows.
enum class Site : std::uint32_t {
  kSchedPoint = 1,     ///< simulated grant: (prev pid, pid, op kind, label)
  kSchedCrash = 2,     ///< simulated crash injection: victim pid
  kCasFail = 3,        ///< Register CAS observed a competing write (label)
  kElimPair = 4,       ///< elimination: leader claimed a parked waiter (slot)
  kElimPayload = 5,    ///< elimination: payload delivered to the waiter
  kElimReclaim = 6,    ///< elimination: claimed waiter timed out and reclaimed
  kLeaseRefillMint = 7,  ///< lease refill served by minting a fresh ticket
  kLeaseRefillPool = 8,  ///< lease refill served from the escrow pool
  kLeaseSeize = 9,       ///< reclaim scan seized a stale lease (slot pid)
  kLeaseDrop = 10,       ///< seized range dropped (escrow pool full)
  kCombineSweep = 11,    ///< combiner claimed a pending slot (slot, want)
  kCombineDeliver = 12,  ///< combined answer delivered to a waiter (slot)
  kCombineWithdraw = 13, ///< waiter timed out of PENDING and went direct
  kCombineReclaim = 14,  ///< waiter reclaimed its CLAIMED slot (combiner lost)
  kCombineSpill = 15,    ///< undeliverable values parked in the spill pool
  kCombineDrop = 16,     ///< spill pool full: values orphaned (slot)
  kNetBalancer = 17,     ///< counting-network balancer traversal (id, port)
  kSplitterStop = 18,    ///< splitter: process stopped (acquired the gadget)
  kSplitterRight = 19,   ///< splitter: process deflected right
  kSplitterDown = 20,    ///< splitter: process deflected down
};

/// One past the largest Site value — array extents for per-site state.
inline constexpr std::size_t kSiteCount =
    static_cast<std::size_t>(Site::kSplitterDown) + 1;

/// Stable snake_case label of a site (report JSON keys, CLI tables).
/// Returns "unknown" for ids outside the catalog.
constexpr const char* site_name(Site site) noexcept {
  switch (site) {
    case Site::kSchedPoint: return "sched_point";
    case Site::kSchedCrash: return "sched_crash";
    case Site::kCasFail: return "cas_fail";
    case Site::kElimPair: return "elim_pair";
    case Site::kElimPayload: return "elim_payload";
    case Site::kElimReclaim: return "elim_reclaim";
    case Site::kLeaseRefillMint: return "lease_refill_mint";
    case Site::kLeaseRefillPool: return "lease_refill_pool";
    case Site::kLeaseSeize: return "lease_seize";
    case Site::kLeaseDrop: return "lease_drop";
    case Site::kCombineSweep: return "combine_sweep";
    case Site::kCombineDeliver: return "combine_deliver";
    case Site::kCombineWithdraw: return "combine_withdraw";
    case Site::kCombineReclaim: return "combine_reclaim";
    case Site::kCombineSpill: return "combine_spill";
    case Site::kCombineDrop: return "combine_drop";
    case Site::kNetBalancer: return "net_balancer";
    case Site::kSplitterStop: return "splitter_stop";
    case Site::kSplitterRight: return "splitter_right";
    case Site::kSplitterDown: return "splitter_down";
  }
  return "unknown";
}

/// One-line description of what a site's counter measures (CLI tables,
/// `renamectl events`).
constexpr const char* site_doc(Site site) noexcept {
  switch (site) {
    case Site::kSchedPoint: return "simulated scheduler grants";
    case Site::kSchedCrash: return "simulated crash injections";
    case Site::kCasFail: return "Register CAS lost to a competing write";
    case Site::kElimPair: return "elimination leader claimed a parked waiter";
    case Site::kElimPayload: return "elimination payload delivered to a waiter";
    case Site::kElimReclaim: return "claimed elimination waiter timed out";
    case Site::kLeaseRefillMint: return "lease refill minted a fresh range";
    case Site::kLeaseRefillPool: return "lease refill reused an escrowed range";
    case Site::kLeaseSeize: return "reclaim scan seized a stale lease";
    case Site::kLeaseDrop: return "seized range dropped (escrow pool full)";
    case Site::kCombineSweep: return "combiner claimed a pending slot";
    case Site::kCombineDeliver: return "combined answer delivered to a waiter";
    case Site::kCombineWithdraw: return "combine waiter timed out, went direct";
    case Site::kCombineReclaim: return "combine waiter reclaimed a claimed slot";
    case Site::kCombineSpill: return "undeliverable values parked in spill pool";
    case Site::kCombineDrop: return "spill pool full, values orphaned";
    case Site::kNetBalancer: return "counting-network balancer traversals";
    case Site::kSplitterStop: return "splitter acquisitions (STOP outcome)";
    case Site::kSplitterRight: return "splitter RIGHT deflections";
    case Site::kSplitterDown: return "splitter DOWN deflections";
  }
  return "unknown site";
}

/// Master switch for the observation consumers: one process-wide relaxed
/// mask with a bit per consumer. obs::emit loads the mask once; with every
/// consumer off the whole hook is one relaxed load + branch, so the sites
/// on hot paths (balancer traversals) stay effectively free.
class Gate {
 public:
  enum Bit : std::uint32_t {
    kCoverage = 1u << 0,  ///< fuzz::Coverage map (fuzz/coverage.h)
    kBus = 1u << 1,       ///< obs::EventBus counters (obs/event_bus.h)
    kRecorder = 1u << 2,  ///< obs::FlightRecorder ring (obs/flight_recorder.h)
  };

  static std::uint32_t mask() noexcept {
    return mask_.load(std::memory_order_relaxed);
  }

  static void set(Bit bit, bool on) noexcept {
    if (on) {
      mask_.fetch_or(bit, std::memory_order_relaxed);
    } else {
      mask_.fetch_and(~static_cast<std::uint32_t>(bit),
                      std::memory_order_relaxed);
    }
  }

  static bool enabled(Bit bit) noexcept { return (mask() & bit) != 0; }

 private:
  static std::atomic<std::uint32_t> mask_;
};

}  // namespace renamelib::obs
