/// \file
/// \brief The flight recorder: a bounded lock-free ring holding the last N
/// runtime events, dumped post-mortem when an oracle fails.
///
/// When a conformance or fuzz oracle rejects an execution, the counters say
/// *how much* happened but not *in what order*. The recorder keeps the tail
/// of the event stream — (site, pid, feature, seq) tuples — in a fixed ring:
/// record() claims a monotone sequence number with one relaxed fetch_add and
/// writes its slot; the ring position is seq mod capacity, so the structure
/// is wait-free, allocation-free, and O(capacity) memory forever.
///
/// Consistency model: a slot is published by storing its sequence number
/// *last* (release). dump() accepts a slot only when the stored seq matches
/// the expected one, so a reader racing a wrap-around sees either the old
/// complete entry or nothing — never a torn mix. Under the simulated backend
/// grants serialize all shared activity, making the dump exact and
/// deterministic; under hardware it is best-effort, which is all a
/// post-mortem needs. pid comes from the thread-local set by the harness
/// (obs/emit.h ThreadPidScope); -1 marks harness/scheduler threads.
///
/// Enablement is a Gate bit (obs/sites.h): fuzz::run_case and the
/// conformance suite switch it on, benches leave it off, and the disabled
/// cost at every site is covered by obs::emit's single mask load.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/sites.h"

namespace renamelib::obs {

/// One recorded event, in dump order.
struct FlightEntry {
  std::uint64_t seq = 0;      ///< global order (simulated: exact)
  Site site = Site::kSchedPoint;
  int pid = -1;               ///< emitting process; -1 = harness/scheduler
  std::uint64_t feature = 0;  ///< the site's data-dependent payload
};

/// The process-wide ring. All methods are thread-safe; reset() must not
/// race an ongoing instrumented execution.
class FlightRecorder {
 public:
  /// Ring capacity (power of two). 512 events is several complete operations
  /// of every protocol in the repo — enough timeline to read a failure.
  static constexpr std::size_t kCapacity = 512;

  /// The process-wide instance.
  static FlightRecorder& instance();

  /// Turns the ring on or off (Gate::kRecorder; off is the default).
  static void set_enabled(bool on) { Gate::set(Gate::kRecorder, on); }
  /// True iff obs::emit feeds the ring.
  static bool enabled() { return Gate::enabled(Gate::kRecorder); }

  /// Appends one event (wait-free; see the file comment for the racing-
  /// wrap consistency rules).
  void record(Site site, std::uint64_t feature, int pid) noexcept {
    const std::uint64_t seq = head_.fetch_add(1, std::memory_order_relaxed);
    Slot& s = slots_[static_cast<std::size_t>(seq) & (kCapacity - 1)];
    s.seq.store(~0ull, std::memory_order_relaxed);  // invalidate while writing
    s.site.store(static_cast<std::uint32_t>(site), std::memory_order_relaxed);
    s.pid.store(pid, std::memory_order_relaxed);
    s.feature.store(feature, std::memory_order_relaxed);
    s.seq.store(seq, std::memory_order_release);  // publish
  }

  /// Events recorded since the last reset (>= entries retained).
  std::uint64_t recorded() const noexcept {
    return head_.load(std::memory_order_relaxed);
  }

  /// The retained tail, oldest first, skipping slots caught mid-write.
  /// At most min(recorded(), kCapacity) entries.
  std::vector<FlightEntry> dump() const;

  /// Human-readable rendering of the last `max_entries` dump rows — the
  /// post-mortem block fuzzctl replay and the conformance suite print under
  /// a failing oracle. Empty string when nothing was recorded.
  std::string format_tail(std::size_t max_entries = 64) const;

  /// Forgets everything (start of one judged execution). Must not race an
  /// instrumented execution.
  void reset();

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> seq{~0ull};  ///< ~0 = never written/in-flight
    std::atomic<std::uint32_t> site{0};
    std::atomic<int> pid{-1};
    std::atomic<std::uint64_t> feature{0};
  };

  FlightRecorder();

  std::atomic<std::uint64_t> head_{0};
  std::unique_ptr<Slot[]> slots_;
};

}  // namespace renamelib::obs
