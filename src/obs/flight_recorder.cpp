#include "obs/flight_recorder.h"

#include <algorithm>
#include <sstream>

namespace renamelib::obs {

FlightRecorder::FlightRecorder()
    : slots_(std::make_unique<Slot[]>(kCapacity)) {}

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder rec;
  return rec;
}

void FlightRecorder::reset() {
  head_.store(0, std::memory_order_relaxed);
  for (std::size_t i = 0; i < kCapacity; ++i) {
    slots_[i].seq.store(~0ull, std::memory_order_relaxed);
  }
}

std::vector<FlightEntry> FlightRecorder::dump() const {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t first = head > kCapacity ? head - kCapacity : 0;
  std::vector<FlightEntry> out;
  out.reserve(static_cast<std::size_t>(head - first));
  for (std::uint64_t seq = first; seq < head; ++seq) {
    const Slot& s = slots_[static_cast<std::size_t>(seq) & (kCapacity - 1)];
    // Acquire pairs with record()'s release publish: a matching seq means
    // the other fields belong to exactly this event.
    if (s.seq.load(std::memory_order_acquire) != seq) continue;
    FlightEntry e;
    e.seq = seq;
    e.site = static_cast<Site>(s.site.load(std::memory_order_relaxed));
    e.pid = s.pid.load(std::memory_order_relaxed);
    e.feature = s.feature.load(std::memory_order_relaxed);
    out.push_back(e);
  }
  return out;
}

std::string FlightRecorder::format_tail(std::size_t max_entries) const {
  const auto entries = dump();
  if (entries.empty()) return "";
  const std::size_t from =
      entries.size() > max_entries ? entries.size() - max_entries : 0;
  std::ostringstream out;
  out << "flight recorder tail (" << (entries.size() - from) << " of "
      << recorded() << " events):\n";
  for (std::size_t i = from; i < entries.size(); ++i) {
    const FlightEntry& e = entries[i];
    out << "  #" << e.seq << " " << site_name(e.site) << " pid=" << e.pid
        << " feature=0x" << std::hex << e.feature << std::dec << "\n";
  }
  return out.str();
}

}  // namespace renamelib::obs
