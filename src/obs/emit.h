/// \file
/// \brief obs::emit — the one instrumentation entry point every runtime
/// decision point calls, fanning out to all observation consumers.
///
/// A site emits once; the event bus counts it, the flight recorder logs it,
/// and the fuzzer's coverage map features it — whichever of the three is
/// switched on. The gate is a single relaxed mask load (obs::Gate), so with
/// everything off the entire hook costs one load + one predictable branch,
/// cheap enough to sit on balancer traversals and CAS-retry loops without
/// moving the numbers the benches report (the nightly bench_combining 2x
/// gate runs with these hooks compiled in and disabled).
///
/// Features must be reproducible across process runs: NEVER feed raw
/// pointers into emit (allocation addresses vary run to run) — use pids,
/// step kinds, slot indices, and fuzz::Coverage::hash_str() of label
/// strings. The flight recorder additionally tags each event with the
/// emitting process id, taken from a thread_local the harnesses set
/// (ThreadPidScope below); scheduler-side sites pass an explicit pid.
#pragma once

#include <cstdint>

#include "fuzz/coverage.h"
#include "obs/event_bus.h"
#include "obs/flight_recorder.h"
#include "obs/sites.h"

namespace renamelib::obs {

namespace detail {
/// The pid the current thread emits under (-1: harness/scheduler thread).
inline thread_local int t_pid = -1;
}  // namespace detail

/// RAII binding of a process id to the current OS thread, so emit() can tag
/// flight-recorder events without threading a Ctx through every site. The
/// workload harness and the simulated executor install one per process body.
class ThreadPidScope {
 public:
  explicit ThreadPidScope(int pid) noexcept : saved_(detail::t_pid) {
    detail::t_pid = pid;
  }
  ~ThreadPidScope() { detail::t_pid = saved_; }
  ThreadPidScope(const ThreadPidScope&) = delete;
  ThreadPidScope& operator=(const ThreadPidScope&) = delete;

 private:
  int saved_;
};

/// Emits one event from `pid` (explicit-pid form: scheduler decisions and
/// other harness-side sites that speak about a process they are not).
inline void emit_for(Site site, std::uint64_t feature, int pid) noexcept {
  const std::uint32_t mask = Gate::mask();
  if (mask == 0) return;
  if (mask & Gate::kBus) EventBus::instance().count(site);
  if (mask & Gate::kRecorder) {
    FlightRecorder::instance().record(site, feature, pid);
  }
  if (mask & Gate::kCoverage) fuzz::Coverage::instance().hit(site, feature);
}

/// Emits one event from the current thread's process (the common form for
/// protocol-internal sites). One relaxed load + branch when all consumers
/// are off.
inline void emit(Site site, std::uint64_t feature) noexcept {
  if (Gate::mask() == 0) return;
  emit_for(site, feature, detail::t_pid);
}

}  // namespace renamelib::obs
